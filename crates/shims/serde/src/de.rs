//! Deserialization half of the serde data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Error raised by a [`Deserializer`].
pub trait Error: Sized + std::error::Error {
    /// Build an error from a message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A value of the wrong data-model type was encountered.
    fn invalid_type(unexp: Unexpected, exp: &dyn Expected) -> Self {
        Self::custom(format!("invalid type: {unexp}, expected {exp}"))
    }

    /// A value of the right type but invalid content was encountered.
    fn invalid_value(unexp: Unexpected, exp: &dyn Expected) -> Self {
        Self::custom(format!("invalid value: {unexp}, expected {exp}"))
    }

    /// A sequence or map had the wrong number of elements.
    fn invalid_length(len: usize, exp: &dyn Expected) -> Self {
        Self::custom(format!("invalid length {len}, expected {exp}"))
    }

    /// An enum variant name/index was not recognised.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }

    /// A struct field name was not recognised.
    fn unknown_field(field: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format!(
            "unknown field `{field}`, expected one of {expected:?}"
        ))
    }

    /// A required struct field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format!("missing field `{field}`"))
    }

    /// A struct field appeared twice.
    fn duplicate_field(field: &'static str) -> Self {
        Self::custom(format!("duplicate field `{field}`"))
    }
}

/// What a [`Visitor`] expected, for error messages.
pub trait Expected {
    /// Format the expectation (e.g. "struct Pose2D").
    fn fmt(&self, formatter: &mut fmt::Formatter) -> fmt::Result;
}

impl Expected for &str {
    fn fmt(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str(self)
    }
}

impl Expected for String {
    fn fmt(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str(self)
    }
}

impl Display for dyn Expected + '_ {
    fn fmt(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        Expected::fmt(self, formatter)
    }
}

/// A value of an unexpected data-model type, for error messages.
#[derive(Debug, Clone, Copy)]
pub enum Unexpected<'a> {
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    Unsigned(u64),
    /// A signed integer.
    Signed(i64),
    /// A float.
    Float(f64),
    /// A character.
    Char(char),
    /// A string.
    Str(&'a str),
    /// Raw bytes.
    Bytes(&'a [u8]),
    /// A unit value.
    Unit,
    /// An `Option`.
    Option,
    /// A newtype struct.
    NewtypeStruct,
    /// A sequence.
    Seq,
    /// A map.
    Map,
    /// An enum.
    Enum,
    /// Anything else.
    Other(&'a str),
}

impl Display for Unexpected<'_> {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        match self {
            Unexpected::Bool(b) => write!(f, "boolean `{b}`"),
            Unexpected::Unsigned(v) => write!(f, "integer `{v}`"),
            Unexpected::Signed(v) => write!(f, "integer `{v}`"),
            Unexpected::Float(v) => write!(f, "floating point `{v}`"),
            Unexpected::Char(c) => write!(f, "character `{c}`"),
            Unexpected::Str(s) => write!(f, "string {s:?}"),
            Unexpected::Bytes(_) => write!(f, "byte array"),
            Unexpected::Unit => write!(f, "unit value"),
            Unexpected::Option => write!(f, "Option value"),
            Unexpected::NewtypeStruct => write!(f, "newtype struct"),
            Unexpected::Seq => write!(f, "sequence"),
            Unexpected::Map => write!(f, "map"),
            Unexpected::Enum => write!(f, "enum"),
            Unexpected::Other(s) => f.write_str(s),
        }
    }
}

/// Renders a visitor's `expecting` message as `Display`, for the
/// default error paths below.
struct Expecting<'a, V>(&'a V);

impl<'de, V: Visitor<'de>> Display for Expecting<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        self.0.expecting(f)
    }
}

/// A data structure that can be deserialized from any serde format.
pub trait Deserialize<'de>: Sized {
    /// Deserialize a value with the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// A stateful deserialization hook; the stateless case is
/// `PhantomData<T>`, which forwards to `T::deserialize`.
pub trait DeserializeSeed<'de>: Sized {
    /// Value produced.
    type Value;
    /// Run the deserialization.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

macro_rules! visit_default {
    ($(#[$doc:meta] $fn:ident : $ty:ty => $unexp:path;)*) => {
        $(
            #[$doc]
            fn $fn<E: Error>(self, v: $ty) -> Result<Self::Value, E> {
                Err(E::invalid_type($unexp(v), &format!("{}", Expecting(&self)).as_str()))
            }
        )*
    };
}

/// Drives construction of a value from deserializer callbacks.
///
/// Every `visit_*` method has a default that errors with an
/// "invalid type" message built from [`Visitor::expecting`];
/// implementations override the ones their type supports.
pub trait Visitor<'de>: Sized {
    /// Value built by this visitor.
    type Value;

    /// Write what this visitor expects (e.g. "struct Pose2D").
    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result;

    visit_default! {
        /// Input contained a bool.
        visit_bool: bool => Unexpected::Bool;
        /// Input contained an i64.
        visit_i64: i64 => Unexpected::Signed;
        /// Input contained a u64.
        visit_u64: u64 => Unexpected::Unsigned;
        /// Input contained an f64.
        visit_f64: f64 => Unexpected::Float;
        /// Input contained a char.
        visit_char: char => Unexpected::Char;
    }

    /// Input contained an i8 (defaults to [`Visitor::visit_i64`]).
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Input contained an i16 (defaults to [`Visitor::visit_i64`]).
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Input contained an i32 (defaults to [`Visitor::visit_i64`]).
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Input contained a u8 (defaults to [`Visitor::visit_u64`]).
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Input contained a u16 (defaults to [`Visitor::visit_u64`]).
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Input contained a u32 (defaults to [`Visitor::visit_u64`]).
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Input contained an f32 (defaults to [`Visitor::visit_f64`]).
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }

    /// Input contained a string slice.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(E::invalid_type(
            Unexpected::Str(v),
            &format!("{}", Expecting(&self)).as_str(),
        ))
    }
    /// Input contained a string borrowed from the input itself.
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    /// Input contained an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Input contained raw bytes.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        Err(E::invalid_type(
            Unexpected::Bytes(v),
            &format!("{}", Expecting(&self)).as_str(),
        ))
    }
    /// Input contained bytes borrowed from the input itself.
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    /// Input contained an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    /// Input contained `None`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type(
            Unexpected::Option,
            &format!("{}", Expecting(&self)).as_str(),
        ))
    }
    /// Input contained `Some(value)`.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::invalid_type(
            Unexpected::Option,
            &format!("{}", Expecting(&self)).as_str(),
        ))
    }
    /// Input contained a unit value.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type(
            Unexpected::Unit,
            &format!("{}", Expecting(&self)).as_str(),
        ))
    }
    /// Input contained a newtype struct wrapping a value.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::invalid_type(
            Unexpected::NewtypeStruct,
            &format!("{}", Expecting(&self)).as_str(),
        ))
    }
    /// Input contained a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(A::Error::invalid_type(
            Unexpected::Seq,
            &format!("{}", Expecting(&self)).as_str(),
        ))
    }
    /// Input contained a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(A::Error::invalid_type(
            Unexpected::Map,
            &format!("{}", Expecting(&self)).as_str(),
        ))
    }
    /// Input contained an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(A::Error::invalid_type(
            Unexpected::Enum,
            &format!("{}", Expecting(&self)).as_str(),
        ))
    }
}

/// A serde input format.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Deserialize whatever the input contains (self-describing formats
    /// only).
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a string slice.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect raw bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect a variable-length sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a fixed-length tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect a multi-field tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a struct with the given fields.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect a struct field name / enum variant tag.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Skip over whatever value comes next.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Whether the format is human readable. Binary formats override
    /// this to `false`.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Access to the elements of a sequence.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Deserialize the next element, or `None` at the end.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Stateless form of [`SeqAccess::next_element_seed`].
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Remaining elements, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Deserialize the next key, or `None` at the end.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Deserialize the value paired with the last key.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Stateless form of [`MapAccess::next_key_seed`].
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Stateless form of [`MapAccess::next_value_seed`].
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Deserialize the next key-value pair, or `None` at the end.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// Remaining entries, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Gives access to the variant's contents after tag dispatch.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Deserialize the variant tag.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Stateless form of [`EnumAccess::variant_seed`].
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the contents of one enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// The variant carries no data.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// The variant carries one value.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// Stateless form of [`VariantAccess::newtype_variant_seed`].
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// The variant carries a tuple of values.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// The variant carries named fields.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Turns primitives into ready-made deserializers (used for enum
/// variant tags).
pub trait IntoDeserializer<'de, E: Error = value::Error> {
    /// The deserializer produced.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Convert into a deserializer.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Ready-made deserializers over primitive values.
pub mod value {
    use super::*;

    /// Plain string error for the ready-made deserializers.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(String);

    impl Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    impl super::Error for Error {
        fn custom<T: Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    impl crate::ser::Error for Error {
        fn custom<T: Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    macro_rules! primitive_deserializer {
        ($(#[$doc:meta] $name:ident : $ty:ty => $visit:ident),* $(,)?) => {
            $(
                #[$doc]
                pub struct $name<E> {
                    value: $ty,
                    marker: PhantomData<E>,
                }

                impl<E> $name<E> {
                    /// Wrap a value.
                    pub fn new(value: $ty) -> Self {
                        $name { value, marker: PhantomData }
                    }
                }

                impl<'de, E: super::Error> Deserializer<'de> for $name<E> {
                    type Error = E;

                    fn deserialize_any<V: Visitor<'de>>(
                        self,
                        visitor: V,
                    ) -> Result<V::Value, E> {
                        visitor.$visit(self.value)
                    }

                    forward_to_any! {
                        deserialize_bool deserialize_i8 deserialize_i16 deserialize_i32
                        deserialize_i64 deserialize_u8 deserialize_u16 deserialize_u32
                        deserialize_u64 deserialize_f32 deserialize_f64 deserialize_char
                        deserialize_str deserialize_string deserialize_bytes
                        deserialize_byte_buf deserialize_option deserialize_unit
                        deserialize_seq deserialize_map deserialize_identifier
                        deserialize_ignored_any
                    }

                    fn deserialize_unit_struct<V: Visitor<'de>>(
                        self,
                        _name: &'static str,
                        visitor: V,
                    ) -> Result<V::Value, E> {
                        self.deserialize_any(visitor)
                    }

                    fn deserialize_newtype_struct<V: Visitor<'de>>(
                        self,
                        _name: &'static str,
                        visitor: V,
                    ) -> Result<V::Value, E> {
                        self.deserialize_any(visitor)
                    }

                    fn deserialize_tuple<V: Visitor<'de>>(
                        self,
                        _len: usize,
                        visitor: V,
                    ) -> Result<V::Value, E> {
                        self.deserialize_any(visitor)
                    }

                    fn deserialize_tuple_struct<V: Visitor<'de>>(
                        self,
                        _name: &'static str,
                        _len: usize,
                        visitor: V,
                    ) -> Result<V::Value, E> {
                        self.deserialize_any(visitor)
                    }

                    fn deserialize_struct<V: Visitor<'de>>(
                        self,
                        _name: &'static str,
                        _fields: &'static [&'static str],
                        visitor: V,
                    ) -> Result<V::Value, E> {
                        self.deserialize_any(visitor)
                    }

                    fn deserialize_enum<V: Visitor<'de>>(
                        self,
                        _name: &'static str,
                        _variants: &'static [&'static str],
                        visitor: V,
                    ) -> Result<V::Value, E> {
                        self.deserialize_any(visitor)
                    }
                }
            )*
        };
    }

    macro_rules! forward_to_any {
        ($($method:ident)*) => {
            $(
                fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }
            )*
        };
    }

    primitive_deserializer! {
        /// Deserializer yielding a fixed `u8`.
        U8Deserializer: u8 => visit_u8,
        /// Deserializer yielding a fixed `u16`.
        U16Deserializer: u16 => visit_u16,
        /// Deserializer yielding a fixed `u32`.
        U32Deserializer: u32 => visit_u32,
        /// Deserializer yielding a fixed `u64`.
        U64Deserializer: u64 => visit_u64,
        /// Deserializer yielding a fixed `usize` (as `u64`).
        UsizeDeserializer: u64 => visit_u64,
    }

    macro_rules! into_deserializer {
        ($($ty:ty => $de:ident),* $(,)?) => {
            $(impl<'de, E: super::Error> IntoDeserializer<'de, E> for $ty {
                type Deserializer = $de<E>;
                fn into_deserializer(self) -> $de<E> {
                    $de::new(self)
                }
            })*
        };
    }

    into_deserializer! {
        u8 => U8Deserializer,
        u16 => U16Deserializer,
        u32 => U32Deserializer,
        u64 => U64Deserializer,
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for std types.

macro_rules! de_prim {
    ($($ty:ty : $deserialize:ident => $visit:ident ( $visit_ty:ty )),* $(,)?) => {
        $(impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        f.write_str(stringify!($ty))
                    }
                    fn $visit<E: Error>(self, v: $visit_ty) -> Result<$ty, E> {
                        Ok(v as $ty)
                    }
                }
                deserializer.$deserialize(V)
            }
        })*
    };
}

de_prim! {
    i8: deserialize_i8 => visit_i8(i8),
    i16: deserialize_i16 => visit_i16(i16),
    i32: deserialize_i32 => visit_i32(i32),
    i64: deserialize_i64 => visit_i64(i64),
    u8: deserialize_u8 => visit_u8(u8),
    u16: deserialize_u16 => visit_u16(u16),
    u32: deserialize_u32 => visit_u32(u32),
    u64: deserialize_u64 => visit_u64(u64),
    f32: deserialize_f32 => visit_f32(f32),
    f64: deserialize_f64 => visit_f64(f64),
    usize: deserialize_u64 => visit_u64(u64),
    isize: deserialize_i64 => visit_i64(i64),
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = bool;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("bool")
            }
            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bool(V)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = char;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("char")
            }
            fn visit_char<E: Error>(self, v: char) -> Result<char, E> {
                Ok(v)
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::invalid_value(Unexpected::Str(v), &"a single character")),
                }
            }
        }
        deserializer.deserialize_char(V)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

/// Intern a string, leaking at most one copy per distinct content.
///
/// This backs `Deserialize for &str`: unlike real serde, which borrows
/// from the input (and therefore cannot produce `&'static str` fields),
/// this shim returns an interned `&'static str`. The leak is bounded by
/// the set of distinct strings ever deserialized — topic names and
/// deployment labels here, a few dozen short strings.
fn intern(s: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let set = INTERNED.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut guard = set.lock().unwrap_or_else(|p| p.into_inner());
    match guard.get(s) {
        Some(&existing) => existing,
        None => {
            let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
            guard.insert(leaked);
            leaked
        }
    }
}

impl<'de, 'a> Deserialize<'de> for &'a str {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = &'static str;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<&'static str, E> {
                Ok(intern(v))
            }
        }
        deserializer.deserialize_str(V).map(|s| s as &'a str)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("an Option")
            }
            fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for V<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(N);
                for i in 0..N {
                    match seq.next_element()? {
                        Some(item) => out.push(item),
                        None => {
                            return Err(A::Error::invalid_length(
                                i,
                                &format!("an array of length {N}").as_str(),
                            ))
                        }
                    }
                }
                out.try_into()
                    .map_err(|_| A::Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, V::<T, N>(PhantomData))
    }
}

macro_rules! de_tuple {
    ($($len:literal => ($($name:ident),+))*) => {
        $(impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                struct V<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for V<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    #[allow(non_snake_case)]
                    fn visit_seq<AC: SeqAccess<'de>>(
                        self,
                        mut seq: AC,
                    ) -> Result<Self::Value, AC::Error> {
                        let mut taken = 0usize;
                        $(
                            let $name = match seq.next_element()? {
                                Some(v) => v,
                                None => return Err(AC::Error::invalid_length(
                                    taken,
                                    &format!("a tuple of length {}", $len).as_str(),
                                )),
                            };
                            taken += 1;
                        )+
                        let _ = taken;
                        Ok(($($name,)+))
                    }
                }
                deserializer.deserialize_tuple($len, V(PhantomData))
            }
        })*
    };
}

de_tuple! {
    1 => (A)
    2 => (A, B)
    3 => (A, B, C)
    4 => (A, B, C, D)
    5 => (A, B, C, D, E)
    6 => (A, B, C, D, E, F)
    7 => (A, B, C, D, E, F, G)
    8 => (A, B, C, D, E, F, G, H)
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for Vis<K, V> {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<'de, K, V, S> Deserialize<'de> for std::collections::HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V, S>(PhantomData<(K, V, S)>);
        impl<'de, K, V, S> Visitor<'de> for Vis<K, V, S>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V: Deserialize<'de>,
            S: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, S>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_capacity_and_hasher(0, S::default());
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de> + Ord> Visitor<'de> for V<T> {
            type Value = std::collections::BTreeSet<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeSet::new();
                while let Some(item) = seq.next_element()? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}
