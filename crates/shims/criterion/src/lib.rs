//! In-tree subset of the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness with the same API surface the
//! `lgv-bench` targets use: [`Criterion::bench_function`], benchmark
//! groups with [`BenchmarkGroup::sample_size`] and
//! [`BenchmarkGroup::bench_with_input`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Instead of the real
//! crate's statistical analysis it times a fixed batch of iterations
//! per sample and prints the median per-iteration time.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::time::{Duration, Instant};

/// Benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 30,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finish the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for one parameterised benchmark case.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a case by its parameter value alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Identify a case by a function name plus parameter value.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time the routine; called once per sample with a tuned
    /// iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export of [`std::hint::black_box`] for API parity.
pub use std::hint::black_box;

fn run_benchmark(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: find an iteration count taking roughly 2 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!(
        "{name:<40} {:>12}   ({} iters x {} samples)",
        format_time(median),
        iters,
        samples
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
