//! In-tree subset of the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] traits
//! with exactly the methods this workspace uses. `Bytes` is a
//! cheaply-cloneable immutable byte buffer backed by `Arc<[u8]>`;
//! `BytesMut` is a growable buffer that freezes into `Bytes`.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Buffer borrowing a static slice (copied into shared storage;
    /// the real crate keeps the pointer, which callers cannot observe
    /// through this API).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Self {
        m.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer; freezes into an immutable [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a byte buffer (little-endian helpers included, as
/// the codec in `lgv-middleware` uses the `_le` family exclusively).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append an `i8`.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i16`.
    fn put_i16_le(&mut self, v: i16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

macro_rules! get_le {
    ($(#[$doc:meta] $fn:ident -> $ty:ty, $n:expr;)*) => {
        $(
            #[$doc]
            fn $fn(&mut self) -> $ty {
                let mut buf = [0u8; $n];
                buf.copy_from_slice(&self.chunk()[..$n]);
                self.advance($n);
                <$ty>::from_le_bytes(buf)
            }
        )*
    };
}

/// Read access to a byte buffer. Reads panic on underflow, matching the
/// real crate; callers (the codec) bounds-check with [`Buf::remaining`]
/// first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read a `u8`.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Read an `i8`.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    get_le! {
        /// Read a little-endian `u16`.
        get_u16_le -> u16, 2;
        /// Read a little-endian `i16`.
        get_i16_le -> i16, 2;
        /// Read a little-endian `u32`.
        get_u32_le -> u32, 4;
        /// Read a little-endian `i32`.
        get_i32_le -> i32, 4;
        /// Read a little-endian `u64`.
        get_u64_le -> u64, 8;
        /// Read a little-endian `i64`.
        get_i64_le -> i64, 8;
        /// Read a little-endian `f32`.
        get_f32_le -> f32, 4;
        /// Read a little-endian `f64`.
        get_f64_le -> f64, 8;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        let rest = self.data[n..].to_vec();
        self.data = Arc::from(rest.into_boxed_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut m = BytesMut::with_capacity(64);
        m.put_u8(7);
        m.put_i16_le(-2);
        m.put_u32_le(0xDEAD_BEEF);
        m.put_f64_le(1.5);
        m.put_slice(b"xyz");
        let b = m.freeze();
        let mut r: &[u8] = &b;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_i16_le(), -2);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r, b"xyz");
    }

    #[test]
    fn bytes_clone_is_shallow_and_equal() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.len(), 3);
        assert_eq!(&c[..], &[1, 2, 3]);
    }

    #[test]
    fn from_static_and_to_vec() {
        let b = Bytes::from_static(b"hi");
        assert_eq!(b.to_vec(), vec![b'h', b'i']);
        assert!(!b.is_empty());
    }
}
