//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree / shrinking: a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.random_range(self.clone())
            }
        })*
    };
}
range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String pattern strategy. Only the `.{min,max}` regex form is
/// supported: it yields strings of `min..=max` characters drawn from a
/// fixed palette that includes multi-byte code points.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_dot_repeat(self).unwrap_or_else(|| {
            panic!("proptest shim: unsupported string pattern {self:?} (only `.{{min,max}}`)")
        });
        const PALETTE: &[char] = &[
            'a', 'b', 'q', 'z', 'A', 'Z', '0', '9', ' ', '_', '-', '.', '/', '"', '\\', '\n', 'é',
            'ß', 'λ', 'ж', '中', '🦀',
        ];
        let len = rng.random_range(min..max + 1);
        (0..len)
            .map(|_| PALETTE[rng.random_range(0usize..PALETTE.len())])
            .collect()
    }
}

/// Parse `.{min,max}` into `(min, max)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (min, max) = rest.split_once(',')?;
    Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        })*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Element-count specification for collection strategies; built from
/// an exact `usize` or a `Range<usize>`.
pub struct SizeRange {
    pub(crate) min: usize,
    pub(crate) max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}
