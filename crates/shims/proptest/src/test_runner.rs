//! Test configuration, RNG, and case outcome types.

use rand::{Rng, SeedableRng};

/// Per-property configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the hermetic suite
        // fast while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test generator: seeded from a hash of the test
/// name so every run of a given test sees the same case sequence.
pub struct TestRng(rand::rngs::SmallRng);

impl TestRng {
    /// Build the generator for the named test.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(rand::rngs::SmallRng::seed_from_u64(h))
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; it does not count.
    Reject(String),
    /// The case failed an assertion; the test panics.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection outcome.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}
