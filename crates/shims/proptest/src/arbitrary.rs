//! `any::<T>()` strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform over bit patterns, like the real crate's `any::<f64>()`
    /// it can yield NaN, infinities, subnormals, and signed zeros.
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u32())
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32((rng.next_u32() % 0xD800).max(1)).unwrap_or('a')
    }
}
