//! In-tree subset of the `proptest` crate.
//!
//! Provides the [`proptest!`] macro family with a simplified runner:
//! each property runs [`test_runner::ProptestConfig::cases`] times
//! against inputs drawn from a deterministic per-test generator (seeded
//! from a hash of the test name), and failures report the failing
//! values without shrinking. Strategy combinators cover exactly what
//! this workspace's tests use: numeric ranges, `any::<T>()`,
//! `collection::vec`/`btree_map`, `option::of`, tuples, `prop_map`,
//! `Just`, and `.{min,max}` string patterns.
//!
//! Known deviations from the real crate: no shrinking, no persisted
//! regression files (`*.proptest-regressions` are ignored), and string
//! strategies accept only the `.{min,max}` regex form.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod strategy;

pub mod test_runner;

pub mod arbitrary;

/// `vec` / `btree_map` strategies over other strategies.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Strategy for `Vec<T>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>` with entry count drawn from
    /// `size` (duplicate keys collapse, as in the real crate).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// Strategy produced by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }

    impl SizeRange {
        pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
            if self.min >= self.max_exclusive.saturating_sub(1) {
                self.min
            } else {
                rng.random_range(self.min..self.max_exclusive)
            }
        }
    }
}

/// `Option` strategies over other strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Strategy for `Option<T>`: `None` roughly one time in four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy produced by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.random_range(0usize..4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// The glob-imported prelude: strategies, config, and macros.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Run the properties defined in the block as `#[test]` functions.
///
/// Supports an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]` and one or
/// more `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config = $cfg;
                let __strategy = ($($strat,)+);
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut __ran: u32 = 0;
                let mut __attempts: u32 = 0;
                while __ran < __config.cases {
                    __attempts += 1;
                    if __attempts > __config.cases.saturating_mul(20) {
                        panic!(
                            "proptest: too many rejected cases in `{}` ({} accepted of {} attempts)",
                            stringify!($name), __ran, __attempts
                        );
                    }
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::sample(&__strategy, &mut __rng);
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => __ran += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => panic!("proptest case {} failed: {}", __ran, __msg),
                    }
                }
            }
        )*
    };
}

/// Fail the current proptest case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                    __l, __r, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Discard the current proptest case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}
