//! Property-based tests for the network substrate: conservation laws
//! of the UDP channel and monotonicity of the signal model.

use bytes::Bytes;
use lgv_net::channel::{SendOutcome, UdpChannel};
use lgv_net::measure::{BandwidthMeter, RttTracker, SignalDirectionEstimator};
use lgv_net::signal::{SignalModel, WirelessConfig};
use lgv_types::prelude::*;
use proptest::prelude::*;

fn model(weak_radius: f64) -> SignalModel {
    SignalModel::new(
        WirelessConfig::default().with_weak_radius(weak_radius),
        Point2::new(0.0, 0.0),
    )
}

proptest! {
    #[test]
    fn rssi_monotone_in_distance(d1 in 0.2f64..100.0, d2 in 0.2f64..100.0) {
        let m = model(20.0);
        let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(m.rssi_at(Point2::new(near, 0.0)) >= m.rssi_at(Point2::new(far, 0.0)));
    }

    #[test]
    fn loss_prob_is_valid_probability(d in 0.1f64..200.0) {
        let m = model(20.0);
        let p = m.loss_prob(Point2::new(d, 0.0));
        prop_assert!((0.0..=1.0).contains(&p));
    }

    /// Conservation: every sent packet is accounted for exactly once —
    /// transmitted+held(≤1)+sender_discarded; every transmitted packet
    /// is delivered, lost in the air, or still in flight.
    #[test]
    fn channel_conserves_packets(
        seed in 0u64..500,
        positions in proptest::collection::vec(0.5f64..60.0, 1..80),
    ) {
        let m = model(20.0);
        let mut ch = UdpChannel::new(m, Duration::ZERO, SimRng::seed_from_u64(seed));
        let mut t = SimTime::EPOCH;
        let mut sent = 0u64;
        let mut held_now = 0u64;
        let mut received = 0u64;
        for (i, &x) in positions.iter().enumerate() {
            let pos = Point2::new(x, 0.0);
            let out = ch.send(t, pos, Bytes::from(vec![i as u8; 16]));
            sent += 1;
            held_now = match out {
                SendOutcome::HeldInKernelBuffer => 1,
                SendOutcome::Transmitted => 0,
                SendOutcome::DiscardedFullBuffer => held_now,
            };
            ch.tick(t + Duration::from_millis(150), pos);
            while ch.recv().is_some() {
                received += 1;
            }
            t += Duration::from_millis(200);
        }
        let s = ch.stats();
        // Sent = transmitted + still-held + discarded-at-sender.
        prop_assert_eq!(sent, s.transmitted + held_now + s.sender_discards);
        // Transmitted = delivered + lost + in flight.
        prop_assert_eq!(
            s.transmitted,
            s.delivered + s.radio_losses + ch.in_flight_len() as u64
        );
        // Receiver saw delivered minus overwritten.
        prop_assert_eq!(received, s.delivered - s.overwritten);
    }

    #[test]
    fn near_wap_nothing_is_sender_discarded(seed in 0u64..200, n in 1usize..60) {
        let m = model(20.0);
        let mut ch = UdpChannel::new(m, Duration::ZERO, SimRng::seed_from_u64(seed));
        let pos = Point2::new(1.0, 0.0);
        for i in 0..n {
            let t = SimTime::EPOCH + Duration::from_millis(200 * i as u64);
            let out = ch.send(t, pos, Bytes::from_static(b"x"));
            prop_assert_eq!(out, SendOutcome::Transmitted);
        }
        prop_assert_eq!(ch.stats().sender_discards, 0);
    }

    #[test]
    fn latency_never_negative(seed in 0u64..200) {
        let m = model(20.0);
        let mut ch = UdpChannel::new(m, Duration::from_millis(12), SimRng::seed_from_u64(seed));
        let pos = Point2::new(2.0, 0.0);
        for i in 0..20u64 {
            let t = SimTime::EPOCH + Duration::from_millis(100 * i);
            ch.send(t, pos, Bytes::from_static(b"y"));
            ch.tick(t + Duration::from_millis(99), pos);
            if let Some(p) = ch.recv() {
                prop_assert!(p.arrived_at >= p.sent_at);
                prop_assert!(p.latency() >= Duration::from_millis(12));
            }
        }
    }

    #[test]
    fn bandwidth_rate_matches_window_count(
        mut offsets in proptest::collection::vec(0u64..5000, 0..50),
    ) {
        // Arrival stamps are monotone in the simulator (the channel
        // delivers in arrival order); the meter relies on that.
        offsets.sort_unstable();
        let mut m = BandwidthMeter::new(Duration::from_secs(1));
        for &o in &offsets {
            m.record(SimTime::EPOCH + Duration::from_millis(o));
        }
        let now = SimTime::EPOCH + Duration::from_millis(5000);
        let in_window =
            offsets.iter().filter(|&&o| 5000 - o <= 1000).count();
        prop_assert_eq!(m.rate(now) as usize, in_window);
    }

    #[test]
    fn rtt_percentiles_are_ordered(ms in proptest::collection::vec(1u64..1000, 1..40)) {
        let mut r = RttTracker::new(64);
        for &v in &ms {
            r.record(Duration::from_millis(v));
        }
        let p50 = r.percentile(50.0).unwrap();
        let p99 = r.percentile(99.0).unwrap();
        prop_assert!(p50 <= p99);
        prop_assert!(r.mean().unwrap() <= p99);
    }

    #[test]
    fn direction_sign_tracks_radial_motion(step in -0.5f64..0.5) {
        prop_assume!(step.abs() > 0.02);
        let mut d = SignalDirectionEstimator::new(Point2::new(0.0, 0.0));
        // Start far enough that we never cross the WAP.
        let mut x = 50.0;
        for i in 0..40 {
            let t = SimTime::EPOCH + Duration::from_millis(200 * i);
            d.update(t, Point2::new(x, 0.0));
            x += step;
        }
        if step > 0.0 {
            prop_assert!(d.direction() < 0.0, "moving away must read negative");
        } else {
            prop_assert!(d.direction() > 0.0, "approaching must read positive");
        }
    }
}
