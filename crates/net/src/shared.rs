//! Shared-spectrum contention between fleet uplinks.
//!
//! The paper's experiments give the single robot the whole access
//! point. A fleet does not get that luxury: every vehicle's uplink
//! crosses the same WAP, and 802.11-style media are *serialization
//! shared* — when `k` stations contend, each one's effective airtime
//! stretches by roughly the airtime the other `k−1` occupy.
//!
//! [`SharedMedium`] models exactly that, deterministically:
//!
//! * Virtual time is divided into fixed windows (one control period by
//!   default). Each transmission records its sender id in the current
//!   window.
//! * A transmission in window `w` pays an **extra serialization delay**
//!   of `airtime × (distinct other senders in window w−1)`. Reading
//!   the *previous* window keeps the penalty independent of intra-round
//!   ordering: the fleet driver runs vehicles in lockstep rounds, so by
//!   the time any vehicle transmits in window `w`, window `w−1` is
//!   final and every vehicle observes the same count.
//! * A vehicle alone on the medium — in particular a fleet of one, or
//!   any channel that never joined a medium — pays **exactly zero**
//!   extra delay, preserving byte-identity with single-vehicle runs.
//!
//! The handle is `Clone`; clones share state, so one medium is created
//! per fleet and every vehicle's uplink joins it via
//! [`crate::link::DuplexLink::join_shared_medium`].

use lgv_types::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// Exact integer scaling (`Duration` only multiplies by `f64`).
fn scale(d: Duration, n: u64) -> Duration {
    Duration::from_nanos(d.as_nanos() * n)
}

/// Aggregate counters for one shared medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MediumStats {
    /// Transmissions that consulted the medium.
    pub sends: u64,
    /// Transmissions that paid a non-zero contention delay.
    pub contended_sends: u64,
    /// Total extra serialization delay paid across all senders.
    pub total_extra: Duration,
    /// Most distinct senders observed in any single window.
    pub peak_senders: u64,
}

impl MediumStats {
    /// Fraction of transmissions that paid a non-zero contention
    /// delay (0.0 on an idle medium).
    pub fn contended_fraction(&self) -> f64 {
        if self.sends == 0 {
            0.0
        } else {
            self.contended_sends as f64 / self.sends as f64
        }
    }

    /// Mean extra serialization delay per transmission, seconds — the
    /// airtime-stretch metric the regional fleet tables report.
    pub fn mean_extra_secs(&self) -> f64 {
        if self.sends == 0 {
            0.0
        } else {
            self.total_extra.as_secs_f64() / self.sends as f64
        }
    }

    /// Fold another medium's counters into this one (counter sums,
    /// peak max) — used to aggregate per-region WAPs into a fleet
    /// total. Exact: every field is integer arithmetic.
    pub fn absorb(&mut self, other: &MediumStats) {
        self.sends += other.sends;
        self.contended_sends += other.contended_sends;
        self.total_extra += other.total_extra;
        self.peak_senders = self.peak_senders.max(other.peak_senders);
    }
}

#[derive(Debug)]
struct MediumInner {
    window: Duration,
    /// Distinct sender ids per window index. Old windows are pruned;
    /// only `w−1` and `w` are ever consulted.
    active: BTreeMap<u64, BTreeSet<u64>>,
    stats: MediumStats,
}

/// One wireless access point shared by several uplinks.
///
/// Cheap to clone; clones share the same contention state.
#[derive(Debug, Clone)]
pub struct SharedMedium {
    inner: Arc<Mutex<MediumInner>>,
}

impl SharedMedium {
    /// A medium whose contention window is `window` wide. Use the
    /// fleet's control period so "concurrent" means "within the same
    /// control cycle".
    pub fn new(window: Duration) -> Self {
        SharedMedium {
            inner: Arc::new(Mutex::new(MediumInner {
                window: if window == Duration::ZERO {
                    Duration::from_millis(200)
                } else {
                    window
                },
                active: BTreeMap::new(),
                stats: MediumStats::default(),
            })),
        }
    }

    /// Record a transmission by `sender` at `now` occupying `airtime`
    /// of serialization, and return the extra delay contention imposes
    /// on it: `airtime × (distinct other senders in the previous
    /// window)`. Zero when the sender had the medium to itself.
    pub fn contend(&self, sender: u64, now: SimTime, airtime: Duration) -> Duration {
        let mut inner = self.inner.lock().unwrap();
        let w = now.as_nanos() / inner.window.as_nanos().max(1);

        let slot = inner.active.entry(w).or_default();
        slot.insert(sender);
        let here = slot.len() as u64;
        inner.stats.peak_senders = inner.stats.peak_senders.max(here);
        // Keep only the windows the model can still consult.
        inner.active = inner.active.split_off(&w.saturating_sub(1));

        let others = inner
            .active
            .get(&w.wrapping_sub(1))
            .map_or(0, |prev| prev.iter().filter(|&&s| s != sender).count())
            as u64;

        inner.stats.sends += 1;
        let extra = scale(airtime, others);
        if others > 0 {
            inner.stats.contended_sends += 1;
            inner.stats.total_extra += extra;
        }
        extra
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> MediumStats {
        self.inner.lock().unwrap().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AIR: Duration = Duration::from_millis(1);

    fn at(ms: u64) -> SimTime {
        SimTime::EPOCH + Duration::from_millis(ms)
    }

    #[test]
    fn lone_sender_pays_nothing_ever() {
        let m = SharedMedium::new(Duration::from_millis(200));
        for i in 0..50 {
            assert_eq!(m.contend(1, at(i * 40), AIR), Duration::ZERO);
        }
        let stats = m.stats();
        assert_eq!(stats.contended_sends, 0);
        assert_eq!(stats.total_extra, Duration::ZERO);
        assert_eq!(stats.peak_senders, 1);
    }

    #[test]
    fn contention_charges_for_last_windows_other_senders() {
        let m = SharedMedium::new(Duration::from_millis(200));
        // Window 0: three senders active.
        for v in 1..=3 {
            assert_eq!(m.contend(v, at(10 * v), AIR), Duration::ZERO);
        }
        // Window 1: each pays for the other two from window 0.
        assert_eq!(m.contend(1, at(210), AIR), scale(AIR, 2));
        assert_eq!(m.contend(9, at(220), AIR), scale(AIR, 3));
        assert_eq!(m.stats().peak_senders, 3);
        assert_eq!(m.stats().contended_sends, 2);
    }

    #[test]
    fn idle_gap_resets_the_penalty() {
        let m = SharedMedium::new(Duration::from_millis(200));
        m.contend(1, at(0), AIR);
        m.contend(2, at(0), AIR);
        // Two windows later, window w−1 is empty: no charge.
        assert_eq!(m.contend(1, at(450), AIR), Duration::ZERO);
    }

    #[test]
    fn order_within_a_round_does_not_matter() {
        // Whatever order vehicles transmit inside window 1, each reads
        // the same finalized window-0 census.
        let run = |order: &[u64]| -> Vec<Duration> {
            let m = SharedMedium::new(Duration::from_millis(200));
            for &v in order {
                m.contend(v, at(0), AIR);
            }
            order.iter().map(|&v| m.contend(v, at(200), AIR)).collect()
        };
        assert_eq!(run(&[1, 2, 3]), vec![scale(AIR, 2); 3]);
        assert_eq!(run(&[3, 1, 2]), vec![scale(AIR, 2); 3]);
    }

    #[test]
    fn stats_absorb_sums_counters_and_maxes_peak() {
        let a = SharedMedium::new(Duration::from_millis(200));
        a.contend(1, at(0), AIR);
        a.contend(2, at(0), AIR);
        a.contend(1, at(200), AIR);
        let b = SharedMedium::new(Duration::from_millis(200));
        b.contend(7, at(0), AIR);
        let mut total = a.stats();
        total.absorb(&b.stats());
        assert_eq!(total.sends, 4);
        assert_eq!(total.contended_sends, 1);
        assert_eq!(total.total_extra, AIR);
        assert_eq!(total.peak_senders, 2);
        assert!((total.contended_fraction() - 0.25).abs() < 1e-12);
        assert!(total.mean_extra_secs() > 0.0);
        assert_eq!(MediumStats::default().contended_fraction(), 0.0);
        assert_eq!(MediumStats::default().mean_extra_secs(), 0.0);
    }

    #[test]
    fn clones_share_state() {
        let m = SharedMedium::new(Duration::from_millis(200));
        let m2 = m.clone();
        m.contend(1, at(0), AIR);
        m2.contend(2, at(0), AIR);
        assert_eq!(m.contend(1, at(200), AIR), AIR);
        assert_eq!(m.stats().sends, 3);
    }
}
