//! Duplex robot↔server links.
//!
//! A [`DuplexLink`] bundles an uplink and a downlink [`UdpChannel`]
//! over the same radio, plus the wired WAN segment that distinguishes
//! the edge gateway (on the lab LAN) from the datacenter cloud server
//! (paper Table III / §VIII-A).

use crate::channel::{Packet, SendOutcome, UdpChannel};
use crate::fault::FaultSchedule;
use crate::signal::{SignalModel, WirelessConfig};
use bytes::Bytes;
use lgv_types::prelude::*;
use serde::{Deserialize, Serialize};

/// Which remote site the link terminates at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RemoteSite {
    /// Edge gateway on the local network: wireless hop only.
    EdgeGateway,
    /// Cloud server in a remote datacenter: wireless + wired WAN hop.
    CloudServer,
}

impl RemoteSite {
    /// Default extra one-way latency of the wired segment.
    pub fn wan_latency(self) -> Duration {
        match self {
            RemoteSite::EdgeGateway => Duration::ZERO,
            RemoteSite::CloudServer => Duration::from_millis(12),
        }
    }
}

/// Link configuration.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Radio parameters.
    pub wireless: WirelessConfig,
    /// WAP position in the world.
    pub wap: Point2,
    /// Remote endpoint.
    pub site: RemoteSite,
    /// Override for the wired segment latency (defaults per site).
    pub wan_latency: Option<Duration>,
}

impl LinkConfig {
    /// Config for a link to the given site with a WAP at `wap`.
    pub fn new(site: RemoteSite, wap: Point2) -> Self {
        LinkConfig {
            wireless: WirelessConfig::default(),
            wap,
            site,
            wan_latency: None,
        }
    }
}

/// A bidirectional robot↔server link.
#[derive(Debug, Clone)]
pub struct DuplexLink {
    /// Robot → server direction.
    pub uplink: UdpChannel,
    /// Server → robot direction.
    pub downlink: UdpChannel,
    site: RemoteSite,
    uplink_bps: f64,
}

impl DuplexLink {
    /// Build both directions over one radio model.
    pub fn new(cfg: LinkConfig, rng: &mut SimRng) -> Self {
        let wan = cfg.wan_latency.unwrap_or_else(|| cfg.site.wan_latency());
        let signal = SignalModel::new(cfg.wireless.clone(), cfg.wap);
        let uplink_bps = cfg.wireless.bandwidth_bps;
        DuplexLink {
            uplink: UdpChannel::new(signal.clone(), wan, rng.fork(0xA1)),
            downlink: UdpChannel::new(signal, wan, rng.fork(0xB2)),
            site: cfg.site,
            uplink_bps,
        }
    }

    /// Route both directions' channel events to `tracer` (uplink
    /// events labelled `up`, downlink events labelled `down`).
    pub fn set_tracer(&mut self, tracer: lgv_trace::Tracer) {
        self.uplink.set_tracer(tracer.clone(), "up");
        self.downlink.set_tracer(tracer, "down");
    }

    /// Install the same scripted fault windows on both directions.
    /// The uplink terminates at the remote host (its arrivals are
    /// swallowed by a crash window); the downlink originates there
    /// (its sends stop instead).
    pub fn set_faults(&mut self, schedule: &FaultSchedule) {
        self.uplink.set_faults(schedule.clone(), true);
        self.downlink.set_faults(schedule.clone(), false);
    }

    /// Join a fleet's shared access point as `vehicle`. Only the
    /// uplink contends: the fleet's heavy traffic is sensor uplink,
    /// and the server-side radio serves the downlink from a wired
    /// backbone in this model.
    pub fn join_shared_medium(&mut self, medium: crate::shared::SharedMedium, vehicle: u64) {
        self.uplink.join_medium(medium, vehicle);
    }

    /// Is the radio itself weak at the robot's position right now
    /// (including scripted blackouts, excluding remote-host crashes)?
    /// This is what the robot's own diagnostics can see — the signal
    /// the liveness heartbeat uses to tell an outage from a dead host.
    pub fn radio_weak(&self, robot: Point2, now: SimTime) -> bool {
        self.uplink.signal().is_weak_at(robot, now)
    }

    /// The remote endpoint of this link.
    pub fn site(&self) -> RemoteSite {
        self.site
    }

    /// Uplink data rate `R_uplink` (bits/s) for Eq. 1b's transmission
    /// energy.
    pub fn uplink_bps(&self) -> f64 {
        self.uplink_bps
    }

    /// Send robot → server.
    pub fn send_up(&mut self, now: SimTime, robot: Point2, payload: Bytes) -> SendOutcome {
        self.uplink.send(now, robot, payload)
    }

    /// Send robot → server carrying the lineage id of the bus message
    /// inside the datagram.
    pub fn send_up_tagged(
        &mut self,
        now: SimTime,
        robot: Point2,
        payload: Bytes,
        msg: lgv_trace::MsgId,
    ) -> SendOutcome {
        self.uplink.send_tagged(now, robot, payload, msg)
    }

    /// Send server → robot (the server is fixed; radio quality is
    /// still governed by the robot's position, passed at tick time).
    pub fn send_down(&mut self, now: SimTime, robot: Point2, payload: Bytes) -> SendOutcome {
        self.downlink.send(now, robot, payload)
    }

    /// Send server → robot with the message's lineage id.
    pub fn send_down_tagged(
        &mut self,
        now: SimTime,
        robot: Point2,
        payload: Bytes,
        msg: lgv_trace::MsgId,
    ) -> SendOutcome {
        self.downlink.send_tagged(now, robot, payload, msg)
    }

    /// Advance both directions to `now` with the robot at `robot`.
    pub fn tick(&mut self, now: SimTime, robot: Point2) {
        self.uplink.tick(now, robot);
        self.downlink.tick(now, robot);
    }

    /// Receive at the server side (from the uplink).
    pub fn recv_at_server(&mut self) -> Option<Packet> {
        self.uplink.recv()
    }

    /// Receive at the robot side (from the downlink).
    pub fn recv_at_robot(&mut self) -> Option<Packet> {
        self.downlink.recv()
    }

    /// Expected one-way latency for a payload of `bytes` at the
    /// robot's current position, ignoring loss (a prior estimate; the
    /// profiler measures the real value).
    pub fn nominal_latency(&self, bytes: usize) -> Duration {
        self.uplink.signal().tx_delay(bytes) + self.site.wan_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(site: RemoteSite) -> DuplexLink {
        let mut rng = SimRng::seed_from_u64(3);
        let mut cfg = LinkConfig::new(site, Point2::new(0.0, 0.0));
        cfg.wireless = WirelessConfig {
            jitter: Duration::ZERO,
            ..WirelessConfig::default()
        }
        .with_weak_radius(20.0);
        DuplexLink::new(cfg, &mut rng)
    }

    #[test]
    fn roundtrip_up_and_down() {
        let mut l = link(RemoteSite::EdgeGateway);
        let robot = Point2::new(2.0, 0.0);
        let t0 = SimTime::EPOCH;
        l.send_up(t0, robot, Bytes::from_static(b"scan"));
        l.tick(t0 + Duration::from_millis(20), robot);
        let got = l.recv_at_server().expect("server receives scan");
        assert_eq!(&got.payload[..], b"scan");

        let t1 = t0 + Duration::from_millis(25);
        l.send_down(t1, robot, Bytes::from_static(b"cmd"));
        l.tick(t1 + Duration::from_millis(20), robot);
        let got = l.recv_at_robot().expect("robot receives command");
        assert_eq!(&got.payload[..], b"cmd");
    }

    #[test]
    fn cloud_has_higher_latency_than_gateway() {
        let mut gw = link(RemoteSite::EdgeGateway);
        let mut cl = link(RemoteSite::CloudServer);
        let robot = Point2::new(2.0, 0.0);
        let t0 = SimTime::EPOCH;
        gw.send_up(t0, robot, Bytes::from_static(b"x"));
        cl.send_up(t0, robot, Bytes::from_static(b"x"));
        gw.tick(t0 + Duration::from_millis(100), robot);
        cl.tick(t0 + Duration::from_millis(100), robot);
        let lg = gw.recv_at_server().unwrap().latency();
        let lc = cl.recv_at_server().unwrap().latency();
        assert!(lc > lg, "cloud {lc} should exceed gateway {lg}");
        assert!(lc >= lg + Duration::from_millis(11));
    }

    #[test]
    fn nominal_latency_includes_wan() {
        let gw = link(RemoteSite::EdgeGateway);
        let cl = link(RemoteSite::CloudServer);
        assert!(cl.nominal_latency(48) > gw.nominal_latency(48));
    }

    #[test]
    fn directions_use_independent_loss_streams() {
        let mut l = link(RemoteSite::EdgeGateway);
        let robot = Point2::new(2.0, 0.0);
        // Both directions work; stats are tracked separately.
        l.send_up(SimTime::EPOCH, robot, Bytes::from_static(b"a"));
        l.send_down(SimTime::EPOCH, robot, Bytes::from_static(b"b"));
        l.tick(SimTime::EPOCH + Duration::from_millis(50), robot);
        assert_eq!(l.uplink.stats().transmitted, 1);
        assert_eq!(l.downlink.stats().transmitted, 1);
    }
}
