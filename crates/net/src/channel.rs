//! Virtual-time UDP channel with Fig. 7 semantics.
//!
//! The paper's key observation (§VI): on the VDP, nodes talk over UDP
//! with one-length queues for data freshness, and under weak signal the
//! wireless driver *blocks the kernel buffer* while the non-blocking
//! socket silently discards everything that does not fit. From the
//! receiver's point of view, packets that do arrive still show healthy
//! latency — so tail-latency metrics report a good network exactly when
//! it is failing. Only the *receive rate* (packet bandwidth) exposes
//! the loss.
//!
//! [`UdpChannel`] reproduces this mechanism precisely:
//!
//! 1. `send` copies a datagram towards the kernel buffer.
//! 2. If the signal is strong, the datagram (plus anything held in the
//!    kernel buffer) is transmitted; each transmission independently
//!    survives with the signal model's loss probability and arrives
//!    after `base + size/bandwidth + wan + jitter`.
//! 3. If the signal is weak, the driver holds one datagram in the
//!    kernel buffer; further sends are discarded at the sender
//!    ([`SendOutcome::DiscardedFullBuffer`]) and never appear in any
//!    latency statistic.
//! 4. The receive side keeps a one-length queue: a newer arrival
//!    overwrites an unread older one (freshness over completeness).

use crate::fault::{FaultInjector, FaultSchedule};
use crate::shared::SharedMedium;
use crate::signal::SignalModel;
use bytes::Bytes;
use lgv_trace::{MsgId, SendKind, TraceEvent, Tracer};
use lgv_types::prelude::*;
use std::collections::BinaryHeap;

/// A datagram delivered to the receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Monotone sequence number assigned at `send`.
    pub seq: u64,
    /// When the sender issued the datagram.
    pub sent_at: SimTime,
    /// When it reached the receiver.
    pub arrived_at: SimTime,
    /// Payload bytes.
    pub payload: Bytes,
    /// Lineage id of the bus message inside the datagram
    /// ([`MsgId::NONE`] for untraced or control traffic).
    pub msg: MsgId,
}

impl Packet {
    /// One-way latency observed by the receiver. This is the metric
    /// that *lies* under weak signal (it only sees survivors).
    pub fn latency(&self) -> Duration {
        self.arrived_at.saturating_since(self.sent_at)
    }
}

/// What happened to a `send` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Handed to the radio and en route (may still be lost in the air).
    Transmitted,
    /// Driver is blocking: held in the one-slot kernel buffer.
    HeldInKernelBuffer,
    /// Kernel buffer already full under weak signal: silently dropped
    /// at the sender (the `EWOULDBLOCK` path of Fig. 7).
    DiscardedFullBuffer,
}

/// Counters for channel diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Datagrams handed to the radio.
    pub transmitted: u64,
    /// Datagrams dropped at the sender (full kernel buffer).
    pub sender_discards: u64,
    /// Datagrams lost in the air.
    pub radio_losses: u64,
    /// Datagrams that reached the receive queue.
    pub delivered: u64,
    /// Unread datagrams overwritten in the one-length receive queue.
    pub overwritten: u64,
    /// Payloads corrupted in the air by an injected fault window.
    pub corrupted: u64,
    /// Arrivals swallowed because the remote host was crashed.
    pub crash_swallowed: u64,
}

#[derive(Debug, Clone)]
struct InFlight {
    arrival: SimTime,
    packet: Packet,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.arrival == other.arrival
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on arrival time.
        other.arrival.cmp(&self.arrival)
    }
}

/// One-directional UDP channel from a mobile sender to a fixed peer.
#[derive(Debug, Clone)]
pub struct UdpChannel {
    signal: SignalModel,
    /// Extra fixed latency past the WAP (wired WAN hop to the cloud).
    wan_latency: Duration,
    rng: SimRng,
    next_seq: u64,
    /// One-slot kernel buffer (Fig. 7's blocked driver state):
    /// `(sent_at, payload, seq, lineage id)`.
    kernel_buffer: Option<(SimTime, Bytes, u64, MsgId)>,
    in_flight: BinaryHeap<InFlight>,
    /// One-length receive queue.
    rx_slot: Option<Packet>,
    stats: ChannelStats,
    tracer: Tracer,
    /// Direction label stamped on trace events (`up` / `down`).
    trace_dir: &'static str,
    /// Scripted fault windows applied to this channel (no-op by default).
    faults: FaultInjector,
    /// Shared-spectrum contention: `(medium, sender id)` once this
    /// channel joins a fleet's access point. `None` (the default) adds
    /// exactly zero delay, keeping single-vehicle runs byte-identical.
    medium: Option<(SharedMedium, u64)>,
}

impl UdpChannel {
    /// Create a channel over the given signal model; `wan_latency` is
    /// the wired segment beyond the WAP (zero for an edge gateway on
    /// the LAN).
    pub fn new(signal: SignalModel, wan_latency: Duration, rng: SimRng) -> Self {
        UdpChannel {
            signal,
            wan_latency,
            rng,
            next_seq: 0,
            kernel_buffer: None,
            in_flight: BinaryHeap::new(),
            rx_slot: None,
            stats: ChannelStats::default(),
            tracer: Tracer::disabled(),
            trace_dir: "link",
            faults: FaultInjector::disabled(),
            medium: None,
        }
    }

    /// Join a shared access point as `sender`: every transmission is
    /// reported to `medium` and pays its contention delay on top of
    /// the private-link latency.
    pub fn join_medium(&mut self, medium: SharedMedium, sender: u64) {
        self.medium = Some((medium, sender));
    }

    /// Install scripted fault windows. `remote_receives` marks the
    /// channel whose destination is the remote host (the uplink):
    /// its in-flight datagrams are swallowed during a
    /// [`crate::fault::FaultKind::RemoteCrash`] window. The injector's
    /// randomness is forked from this channel's own stream, so runs
    /// stay deterministic per seed.
    pub fn set_faults(&mut self, schedule: FaultSchedule, remote_receives: bool) {
        self.signal.set_faults(schedule.clone());
        self.faults = FaultInjector::new(schedule, self.rng.fork(0xFA17), remote_receives);
    }

    /// Route this channel's send/loss events to `tracer`, labelled
    /// with the direction `dir` (`"up"` / `"down"`).
    pub fn set_tracer(&mut self, tracer: Tracer, dir: &'static str) {
        self.tracer = tracer;
        self.trace_dir = dir;
    }

    /// The underlying signal model.
    pub fn signal(&self) -> &SignalModel {
        &self.signal
    }

    /// Diagnostics counters.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    fn transmit(
        &mut self,
        sent_at: SimTime,
        now: SimTime,
        payload: Bytes,
        seq: u64,
        msg: MsgId,
        pos: Point2,
    ) {
        self.stats.transmitted += 1;
        if self.faults.drops_at_send(now) || self.rng.chance(self.signal.loss_prob_at(pos, now)) {
            self.stats.radio_losses += 1;
            self.tracer
                .emit_with_at(now.as_nanos(), || TraceEvent::ChannelLoss {
                    dir: self.trace_dir.to_string(),
                    seq,
                    msg,
                });
            return;
        }
        let payload = if self.faults.corrupts(now) {
            self.stats.corrupted += 1;
            self.faults.corrupt_payload(&payload)
        } else {
            payload
        };
        let jitter = self.signal.config().jitter * self.rng.uniform();
        let mut arrival =
            now + self.signal.tx_delay_at(payload.len(), now) + self.wan_latency + jitter;
        // Shared-spectrum contention stretches the airtime by the
        // other stations' traffic; an un-joined channel (or a fleet of
        // one) adds exactly zero here.
        if let Some((medium, sender)) = &self.medium {
            let airtime = self.signal.serialization_delay(payload.len());
            arrival += medium.contend(*sender, now, airtime);
        }
        self.in_flight.push(InFlight {
            arrival,
            packet: Packet {
                seq,
                sent_at,
                arrived_at: arrival,
                payload,
                msg,
            },
        });
    }

    /// Send a datagram from the robot at position `pos` at time `now`.
    pub fn send(&mut self, now: SimTime, pos: Point2, payload: Bytes) -> SendOutcome {
        self.send_tagged(now, pos, payload, MsgId::NONE)
    }

    /// Like [`UdpChannel::send`], carrying the lineage id of the bus
    /// message inside the datagram so trace analysis can follow it
    /// across the channel.
    pub fn send_tagged(
        &mut self,
        now: SimTime,
        pos: Point2,
        payload: Bytes,
        msg: MsgId,
    ) -> SendOutcome {
        let seq = self.next_seq;
        self.next_seq += 1;
        let bytes = payload.len() as u64;

        let trace_send = |ch: &UdpChannel, kind: SendKind| {
            ch.tracer
                .emit_with_at(now.as_nanos(), || TraceEvent::ChannelSend {
                    dir: ch.trace_dir.to_string(),
                    seq,
                    bytes,
                    outcome: kind,
                    msg,
                });
        };

        if self.signal.is_weak_at(pos, now) {
            if self.kernel_buffer.is_some() {
                self.stats.sender_discards += 1;
                trace_send(self, SendKind::Discarded);
                return SendOutcome::DiscardedFullBuffer;
            }
            self.kernel_buffer = Some((now, payload, seq, msg));
            trace_send(self, SendKind::Held);
            return SendOutcome::HeldInKernelBuffer;
        }

        // Strong signal: the driver first flushes anything it held.
        trace_send(self, SendKind::Transmitted);
        if let Some((held_at, held, held_seq, held_msg)) = self.kernel_buffer.take() {
            self.transmit(held_at, now, held, held_seq, held_msg, pos);
        }
        self.transmit(now, now, payload, seq, msg, pos);
        SendOutcome::Transmitted
    }

    /// Advance the channel to `now` with the robot at `pos`: flushes a
    /// held kernel buffer if the signal recovered and moves arrivals
    /// into the one-length receive queue.
    pub fn tick(&mut self, now: SimTime, pos: Point2) {
        let _prof = lgv_trace::prof::scope("net/channel_tick");
        if !self.signal.is_weak_at(pos, now) {
            if let Some((held_at, held, held_seq, held_msg)) = self.kernel_buffer.take() {
                self.transmit(held_at, now, held, held_seq, held_msg, pos);
            }
        }
        while let Some(f) = self.in_flight.peek() {
            if f.arrival > now {
                break;
            }
            let pkt = self.in_flight.pop().unwrap().packet;
            // A crashed remote host receives nothing: datagrams that
            // land during the crash window vanish at the dead box.
            if self.faults.swallows_at_delivery(pkt.arrived_at) {
                self.stats.crash_swallowed += 1;
                self.tracer
                    .emit_with_at(now.as_nanos(), || TraceEvent::ChannelLoss {
                        dir: self.trace_dir.to_string(),
                        seq: pkt.seq,
                        msg: pkt.msg,
                    });
                continue;
            }
            // Emitted at the tick that observes the arrival (keeping
            // trace timestamps non-decreasing); the true channel
            // latency rides in `latency_ns`.
            self.tracer
                .emit_with_at(now.as_nanos(), || TraceEvent::ChannelDeliver {
                    dir: self.trace_dir.to_string(),
                    seq: pkt.seq,
                    msg: pkt.msg,
                    latency_ns: pkt.latency().as_nanos(),
                });
            if self.rx_slot.replace(pkt).is_some() {
                self.stats.overwritten += 1;
            }
            self.stats.delivered += 1;
        }
    }

    /// Take the freshest datagram from the receive queue, if any.
    pub fn recv(&mut self) -> Option<Packet> {
        self.rx_slot.take()
    }

    /// Packets currently in the air (test/diagnostic hook).
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::WirelessConfig;

    fn strong_pos() -> Point2 {
        Point2::new(1.0, 0.0)
    }

    fn weak_pos() -> Point2 {
        // Inside the weak region but with near-certain radio loss only
        // much further out.
        Point2::new(25.0, 0.0)
    }

    fn channel() -> UdpChannel {
        let cfg = WirelessConfig {
            loss_mid_dbm: -110.0,
            ..WirelessConfig::default()
        }
        .with_weak_radius(20.0);
        let sm = SignalModel::new(cfg, Point2::new(0.0, 0.0));
        UdpChannel::new(sm, Duration::ZERO, SimRng::seed_from_u64(11))
    }

    fn payload(n: usize) -> Bytes {
        Bytes::from(vec![0u8; n])
    }

    #[test]
    fn strong_signal_delivers_with_latency() {
        let mut ch = channel();
        let t0 = SimTime::EPOCH;
        assert_eq!(
            ch.send(t0, strong_pos(), payload(48)),
            SendOutcome::Transmitted
        );
        ch.tick(t0 + Duration::from_millis(50), strong_pos());
        let p = ch.recv().expect("packet should arrive");
        assert_eq!(p.seq, 0);
        assert!(p.latency() >= Duration::from_millis(2));
        assert!(p.latency() < Duration::from_millis(10));
    }

    #[test]
    fn weak_signal_holds_then_discards() {
        let mut ch = channel();
        let t0 = SimTime::EPOCH;
        assert_eq!(
            ch.send(t0, weak_pos(), payload(48)),
            SendOutcome::HeldInKernelBuffer
        );
        // Next sends hit the full kernel buffer: silently dropped.
        for i in 1..5 {
            let t = t0 + Duration::from_millis(200 * i);
            assert_eq!(
                ch.send(t, weak_pos(), payload(48)),
                SendOutcome::DiscardedFullBuffer
            );
        }
        assert_eq!(ch.stats().sender_discards, 4);
        // Nothing arrives while the buffer is blocked.
        ch.tick(t0 + Duration::from_secs(2), weak_pos());
        assert!(ch.recv().is_none());
    }

    #[test]
    fn held_packet_flushes_on_recovery_with_long_real_latency() {
        let mut ch = channel();
        let t0 = SimTime::EPOCH;
        ch.send(t0, weak_pos(), payload(48));
        // Robot returns towards the WAP 3 s later.
        let t1 = t0 + Duration::from_secs(3);
        ch.tick(t1, strong_pos());
        ch.tick(t1 + Duration::from_millis(50), strong_pos());
        let p = ch.recv().expect("held packet should flush");
        assert_eq!(p.seq, 0);
        // Its true latency includes the 3 s the driver sat on it.
        assert!(p.latency() >= Duration::from_secs(3));
    }

    #[test]
    fn figure7_latency_lies_bandwidth_tells_truth() {
        // Send 5 Hz for 2 s in strong signal, then 2 s in weak signal.
        let mut ch = channel();
        let mut delivered_latencies = vec![];
        let mut delivered = 0;
        for i in 0..20 {
            let t = SimTime::EPOCH + Duration::from_millis(200 * i);
            let pos = if i < 10 { strong_pos() } else { weak_pos() };
            ch.send(t, pos, payload(48));
            ch.tick(t + Duration::from_millis(199), pos);
            if let Some(p) = ch.recv() {
                delivered += 1;
                delivered_latencies.push(p.latency());
            }
        }
        // Roughly half the packets vanish…
        assert!(delivered <= 11, "delivered {delivered}");
        // …yet every *observed* latency still looks healthy (the held
        // packet only flushes on recovery, which never happens here).
        assert!(delivered_latencies
            .iter()
            .all(|l| *l < Duration::from_millis(20)));
    }

    #[test]
    fn one_length_queue_overwrites_stale() {
        let mut ch = channel();
        let t0 = SimTime::EPOCH;
        ch.send(t0, strong_pos(), payload(8));
        ch.send(t0 + Duration::from_millis(1), strong_pos(), payload(8));
        ch.tick(t0 + Duration::from_millis(100), strong_pos());
        let p = ch.recv().expect("latest packet");
        assert_eq!(p.seq, 1, "queue must keep the freshest datagram");
        assert!(ch.recv().is_none());
        assert_eq!(ch.stats().overwritten, 1);
    }

    #[test]
    fn radio_loss_drops_packets_far_out() {
        // Loss midpoint above the weak threshold: a band where the
        // driver does not block yet the air is already lossy.
        let cfg = WirelessConfig {
            loss_mid_dbm: -66.0,
            ..WirelessConfig::default()
        };
        let sm = SignalModel::new(cfg, Point2::new(0.0, 0.0));
        let mut ch = UdpChannel::new(sm, Duration::ZERO, SimRng::seed_from_u64(5));
        let pos = Point2::new(17.0, 0.0);
        let mut got = 0;
        for i in 0..200 {
            let t = SimTime::EPOCH + Duration::from_millis(10 * i);
            ch.send(t, pos, payload(8));
            ch.tick(t + Duration::from_millis(9), pos);
            if ch.recv().is_some() {
                got += 1;
            }
        }
        let stats = ch.stats();
        assert!(stats.radio_losses > 0, "expected some radio losses");
        assert!(got > 0, "expected some deliveries");
        assert_eq!(stats.delivered as usize, got);
    }

    #[test]
    fn wan_latency_adds_to_delivery() {
        let cfg = WirelessConfig {
            jitter: Duration::ZERO,
            ..WirelessConfig::default()
        };
        let sm = SignalModel::new(cfg, Point2::new(0.0, 0.0));
        let mut ch = UdpChannel::new(sm, Duration::from_millis(15), SimRng::seed_from_u64(6));
        ch.send(SimTime::EPOCH, strong_pos(), payload(48));
        ch.tick(SimTime::EPOCH + Duration::from_millis(30), strong_pos());
        let p = ch.recv().unwrap();
        assert!(p.latency() >= Duration::from_millis(17));
    }

    #[test]
    fn deliver_events_carry_lineage_and_true_latency() {
        use lgv_trace::{RingBufferSink, TraceEvent, Tracer};
        let mut ch = channel();
        let tracer = Tracer::enabled();
        let ring = tracer.attach(RingBufferSink::new(16));
        ch.set_tracer(tracer, "up");
        let t0 = SimTime::EPOCH;
        // Held under weak signal, flushed 3 s later on recovery: the
        // deliver event must carry the full buffered latency.
        ch.send_tagged(t0, weak_pos(), payload(48), MsgId(7));
        let t1 = t0 + Duration::from_secs(3);
        ch.tick(t1, strong_pos());
        ch.tick(t1 + Duration::from_millis(50), strong_pos());
        assert!(ch.recv().is_some());
        let ring = ring.lock().unwrap();
        let deliver = ring
            .records()
            .find_map(|r| match &r.event {
                TraceEvent::ChannelDeliver {
                    msg, latency_ns, ..
                } => Some((*msg, *latency_ns, r.t_ns)),
                _ => None,
            })
            .expect("deliver event emitted");
        assert_eq!(deliver.0, MsgId(7));
        assert!(
            deliver.1 >= 3_000_000_000,
            "latency {} includes buffering",
            deliver.1
        );
        // Stamped at the observing tick, not the (earlier) arrival.
        assert!(deliver.2 >= t1.as_nanos());
    }

    #[test]
    fn blackout_window_blocks_like_weak_signal() {
        use crate::fault::{FaultKind, FaultSchedule};
        let mut ch = channel();
        ch.set_faults(
            FaultSchedule::none().with(1.0, 2.0, FaultKind::Blackout),
            true,
        );
        let t0 = SimTime::EPOCH;
        // Strong position, no fault yet: delivers normally.
        assert_eq!(
            ch.send(t0, strong_pos(), payload(8)),
            SendOutcome::Transmitted
        );
        // Inside the blackout the driver blocks even near the WAP.
        let t1 = t0 + Duration::from_millis(1500);
        assert_eq!(
            ch.send(t1, strong_pos(), payload(8)),
            SendOutcome::HeldInKernelBuffer
        );
        assert_eq!(
            ch.send(t1, strong_pos(), payload(8)),
            SendOutcome::DiscardedFullBuffer
        );
        // After the window the held datagram flushes and arrives.
        let t2 = t0 + Duration::from_millis(3200);
        ch.tick(t2, strong_pos());
        ch.tick(t2 + Duration::from_millis(50), strong_pos());
        let p = ch.recv().expect("held packet flushes after blackout");
        assert!(p.latency() >= Duration::from_millis(1500));
    }

    #[test]
    fn crashed_remote_swallows_arrivals_but_radio_stays_healthy() {
        use crate::fault::{FaultKind, FaultSchedule};
        let mut ch = channel();
        ch.set_faults(
            FaultSchedule::none().with(0.0, 10.0, FaultKind::RemoteCrash),
            true,
        );
        let t0 = SimTime::EPOCH;
        // The radio itself is fine: sends are accepted, not held.
        assert_eq!(
            ch.send(t0, strong_pos(), payload(8)),
            SendOutcome::Transmitted
        );
        ch.tick(t0 + Duration::from_millis(100), strong_pos());
        assert!(ch.recv().is_none(), "dead host must not receive");
        assert_eq!(ch.stats().delivered, 0);
        // Downlink direction (remote sends): drops at launch instead.
        let mut down = channel();
        down.set_faults(
            FaultSchedule::none().with(0.0, 10.0, FaultKind::RemoteCrash),
            false,
        );
        down.send(t0, strong_pos(), payload(8));
        down.tick(t0 + Duration::from_millis(100), strong_pos());
        assert!(down.recv().is_none(), "dead host cannot send");
        assert!(down.stats().radio_losses >= 1);
    }

    #[test]
    fn latency_spike_inflates_delivery_time() {
        use crate::fault::{FaultKind, FaultSchedule};
        let cfg = WirelessConfig {
            jitter: Duration::ZERO,
            ..WirelessConfig::default()
        };
        let sm = SignalModel::new(cfg, Point2::new(0.0, 0.0));
        let mut ch = UdpChannel::new(sm, Duration::ZERO, SimRng::seed_from_u64(6));
        ch.set_faults(
            FaultSchedule::none().with(
                0.0,
                1.0,
                FaultKind::LatencySpike {
                    extra: Duration::from_millis(80),
                },
            ),
            true,
        );
        ch.send(SimTime::EPOCH, strong_pos(), payload(48));
        ch.tick(SimTime::EPOCH + Duration::from_millis(200), strong_pos());
        let p = ch.recv().expect("delayed but delivered");
        assert!(
            p.latency() >= Duration::from_millis(80),
            "latency {}",
            p.latency()
        );
    }

    #[test]
    fn corruption_window_mangles_payloads() {
        use crate::fault::{FaultKind, FaultSchedule};
        let mut ch = channel();
        ch.set_faults(
            FaultSchedule::none().with(0.0, 1.0, FaultKind::Corruption { prob: 1.0 }),
            true,
        );
        let orig = payload(64);
        ch.send(SimTime::EPOCH, strong_pos(), orig.clone());
        ch.tick(SimTime::EPOCH + Duration::from_millis(100), strong_pos());
        let p = ch.recv().expect("corrupted packets still arrive");
        assert_ne!(p.payload, orig);
        assert_eq!(ch.stats().corrupted, 1);
    }

    #[test]
    fn sequence_numbers_are_monotone() {
        let mut ch = channel();
        for i in 0..5 {
            ch.send(
                SimTime::EPOCH + Duration::from_millis(i),
                strong_pos(),
                payload(4),
            );
        }
        ch.tick(SimTime::EPOCH + Duration::from_secs(1), strong_pos());
        // Only the freshest survives the one-length queue.
        assert_eq!(ch.recv().unwrap().seq, 4);
        assert_eq!(ch.stats().delivered, 5);
    }
}
