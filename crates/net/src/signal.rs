//! Radio signal model.
//!
//! Received signal strength follows the standard log-distance path
//! loss model: `RSSI(d) = P_tx − L₀ − 10·n·log₁₀(d/d₀)`. From the
//! RSSI we derive (a) a packet-loss probability via a logistic curve
//! and (b) the *weak-signal* condition under which the wireless driver
//! blocks the kernel buffer (paper Fig. 7).

use crate::fault::FaultSchedule;
use lgv_types::prelude::*;
use serde::{Deserialize, Serialize};

/// Radio configuration for a 5 GHz WiFi link (paper §VIII-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WirelessConfig {
    /// Transmit power (dBm).
    pub tx_power_dbm: f64,
    /// Reference path loss at 1 m (dB). ~46 dB for 5 GHz.
    pub ref_loss_db: f64,
    /// Path-loss exponent `n` (2 free space, 2.5–4 indoors).
    pub path_loss_exp: f64,
    /// RSSI below which the driver considers the signal weak and
    /// blocks the kernel buffer (dBm).
    pub weak_rssi_dbm: f64,
    /// RSSI at which packet loss reaches 50 % (dBm).
    pub loss_mid_dbm: f64,
    /// Steepness of the loss logistic (per dB).
    pub loss_steepness: f64,
    /// Link bandwidth (bits/s).
    pub bandwidth_bps: f64,
    /// Propagation + MAC base latency.
    pub base_latency: Duration,
    /// Uniform jitter bound added per packet.
    pub jitter: Duration,
}

impl Default for WirelessConfig {
    fn default() -> Self {
        WirelessConfig {
            tx_power_dbm: 15.0,
            ref_loss_db: 46.0,
            path_loss_exp: 3.0,
            weak_rssi_dbm: -72.0,
            loss_mid_dbm: -76.0,
            loss_steepness: 0.8,
            bandwidth_bps: 20e6,
            base_latency: Duration::from_millis(2),
            jitter: Duration::from_millis(1),
        }
    }
}

impl WirelessConfig {
    /// A config whose weak-signal boundary sits at roughly `radius`
    /// metres from the WAP — convenient for staging the Fig. 11
    /// experiment geometry.
    pub fn with_weak_radius(mut self, radius: f64) -> Self {
        // Solve RSSI(radius) = weak_rssi for ref_loss.
        self.ref_loss_db = self.tx_power_dbm
            - self.weak_rssi_dbm
            - 10.0 * self.path_loss_exp * radius.max(0.1).log10();
        self
    }
}

/// The signal model anchored at a WAP position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalModel {
    cfg: WirelessConfig,
    /// WAP position in the world frame.
    pub wap: Point2,
    /// Scripted fault windows overlaid on the smooth path-loss model
    /// (empty by default). Radio faults alter the time-aware queries
    /// ([`Self::is_weak_at`], [`Self::loss_prob_at`],
    /// [`Self::tx_delay_at`]); a remote-host crash deliberately does
    /// *not* — the radio is healthy, only the far end is dead.
    faults: FaultSchedule,
}

impl SignalModel {
    /// Build a model for a WAP at `wap`.
    pub fn new(cfg: WirelessConfig, wap: Point2) -> Self {
        SignalModel {
            cfg,
            wap,
            faults: FaultSchedule::default(),
        }
    }

    /// Radio configuration.
    pub fn config(&self) -> &WirelessConfig {
        &self.cfg
    }

    /// Overlay scripted fault windows on the radio model.
    pub fn set_faults(&mut self, faults: FaultSchedule) {
        self.faults = faults;
    }

    /// The scripted fault windows (empty when none were installed).
    pub fn faults(&self) -> &FaultSchedule {
        &self.faults
    }

    /// RSSI (dBm) at a robot position.
    pub fn rssi_at(&self, robot: Point2) -> f64 {
        let d = robot.distance(self.wap).max(0.1);
        self.cfg.tx_power_dbm - self.cfg.ref_loss_db - 10.0 * self.cfg.path_loss_exp * d.log10()
    }

    /// Is the driver in the weak-signal (buffer-blocking) regime here?
    pub fn is_weak(&self, robot: Point2) -> bool {
        self.rssi_at(robot) < self.cfg.weak_rssi_dbm
    }

    /// Per-packet loss probability at a robot position (logistic in
    /// RSSI; ~0 near the WAP, →1 far outside range).
    pub fn loss_prob(&self, robot: Point2) -> f64 {
        let rssi = self.rssi_at(robot);
        1.0 / (1.0 + ((rssi - self.cfg.loss_mid_dbm) * self.cfg.loss_steepness).exp())
    }

    /// Transmission delay for a packet of `bytes` at this position
    /// (base latency + serialization; jitter is added by the channel).
    pub fn tx_delay(&self, bytes: usize) -> Duration {
        self.cfg.base_latency + self.serialization_delay(bytes)
    }

    /// The airtime a packet of `bytes` occupies on the medium
    /// (`bytes·8 / bandwidth`) — the unit of contention when several
    /// senders share one access point
    /// ([`crate::shared::SharedMedium`]).
    pub fn serialization_delay(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.cfg.bandwidth_bps)
    }

    /// Distance from a robot position to the WAP.
    pub fn distance(&self, robot: Point2) -> f64 {
        robot.distance(self.wap)
    }

    /// Time-aware [`Self::is_weak`]: a blackout window forces the
    /// weak-signal (buffer-blocking) regime everywhere.
    pub fn is_weak_at(&self, robot: Point2, now: SimTime) -> bool {
        self.faults.blackout_at(now) || self.is_weak(robot)
    }

    /// Time-aware [`Self::loss_prob`]: a blackout window loses every
    /// packet regardless of position.
    pub fn loss_prob_at(&self, robot: Point2, now: SimTime) -> f64 {
        if self.faults.blackout_at(now) {
            return 1.0;
        }
        self.loss_prob(robot)
    }

    /// Time-aware [`Self::tx_delay`]: latency-spike windows add their
    /// extra one-way delay.
    pub fn tx_delay_at(&self, bytes: usize, now: SimTime) -> Duration {
        self.tx_delay(bytes) + self.faults.extra_latency_at(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SignalModel {
        SignalModel::new(WirelessConfig::default(), Point2::new(0.0, 0.0))
    }

    #[test]
    fn rssi_decreases_with_distance() {
        let m = model();
        let near = m.rssi_at(Point2::new(1.0, 0.0));
        let mid = m.rssi_at(Point2::new(5.0, 0.0));
        let far = m.rssi_at(Point2::new(25.0, 0.0));
        assert!(near > mid && mid > far);
    }

    #[test]
    fn rssi_follows_log_distance_slope() {
        let m = model();
        // ×10 distance → −10·n dB.
        let a = m.rssi_at(Point2::new(1.0, 0.0));
        let b = m.rssi_at(Point2::new(10.0, 0.0));
        assert!((a - b - 30.0).abs() < 1e-9, "{}", a - b);
    }

    #[test]
    fn loss_prob_is_probability_and_monotone() {
        let m = model();
        let mut prev = 0.0;
        for d in [1.0, 5.0, 10.0, 20.0, 40.0, 80.0] {
            let p = m.loss_prob(Point2::new(d, 0.0));
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev, "loss must not decrease with distance");
            prev = p;
        }
        assert!(m.loss_prob(Point2::new(1.0, 0.0)) < 0.01);
        assert!(m.loss_prob(Point2::new(100.0, 0.0)) > 0.9);
    }

    #[test]
    fn weak_region_is_far_from_wap() {
        let m = model();
        assert!(!m.is_weak(Point2::new(2.0, 0.0)));
        assert!(m.is_weak(Point2::new(60.0, 0.0)));
    }

    #[test]
    fn weak_radius_helper_places_boundary() {
        let cfg = WirelessConfig::default().with_weak_radius(20.0);
        let m = SignalModel::new(cfg, Point2::new(0.0, 0.0));
        assert!(!m.is_weak(Point2::new(19.0, 0.0)));
        assert!(m.is_weak(Point2::new(21.0, 0.0)));
    }

    #[test]
    fn tx_delay_scales_with_size() {
        let m = model();
        let small = m.tx_delay(48);
        let big = m.tx_delay(48_000);
        assert!(big > small);
        // 48 kB at 20 Mb/s ≈ 19.2 ms + 2 ms base.
        assert!(
            (big.as_millis_f64() - 21.2).abs() < 0.5,
            "{}",
            big.as_millis_f64()
        );
    }

    #[test]
    fn rssi_clamps_tiny_distances() {
        let m = model();
        // At the WAP itself we clamp to 0.1 m instead of +∞ dB.
        let r = m.rssi_at(Point2::new(0.0, 0.0));
        assert!(r.is_finite());
    }
}
