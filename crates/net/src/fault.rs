//! Deterministic fault injection for the wireless stack.
//!
//! The smooth log-distance decay in [`signal`](crate::signal) only
//! exercises the paper's Algorithm 2 on *gradual* degradation. Real
//! deployments also hit the ugly failures — link blackouts, bursty
//! loss, latency spikes, corrupted frames, and a cloud host that dies
//! mid-mission — and the recovery machinery (heartbeat, migration
//! deadlines, re-offload backoff) is only testable if those failures
//! can be scripted *reproducibly*.
//!
//! This module provides that substrate: a [`FaultSchedule`] is a list
//! of [`FaultWindow`]s on the virtual clock, each carrying one
//! [`FaultKind`]. A [`FaultInjector`] (one per channel, seeded from
//! the channel's own [`SimRng`]) applies the active windows uniformly
//! inside [`UdpChannel`](crate::UdpChannel),
//! [`TcpChannel`](crate::TcpChannel), and
//! [`SignalModel`](crate::signal::SignalModel), so the same seed and
//! schedule reproduce a byte-identical trace run after run.
//!
//! Two failure families are deliberately distinct:
//!
//! * **Radio faults** ([`FaultKind::Blackout`], [`FaultKind::BurstLoss`],
//!   [`FaultKind::LatencySpike`], [`FaultKind::Corruption`]) degrade the
//!   *link*: RSSI-derived weakness and loss spike, so the robot's own
//!   radio diagnostics see the problem.
//! * **[`FaultKind::RemoteCrash`]** kills the *remote host* while the
//!   radio stays healthy: uplink frames land at a dead box and
//!   downlink traffic simply stops. The robot can only infer this from
//!   silence — which is exactly what the cloud-liveness heartbeat in
//!   `lgv-core` does.

use lgv_types::prelude::*;
use serde::{Deserialize, Serialize};

/// One kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Total radio blackout: the signal reads weak and every
    /// transmission is lost, in both directions.
    Blackout,
    /// Gilbert–Elliott burst loss: a two-state Markov chain advanced
    /// once per transmission. In the *good* state the channel behaves
    /// normally; in the *bad* state each transmission is lost with
    /// probability `loss_in_burst`.
    BurstLoss {
        /// Per-transmission probability of entering the bad state.
        p_enter: f64,
        /// Per-transmission probability of leaving the bad state.
        p_exit: f64,
        /// Loss probability while the chain is in the bad state.
        loss_in_burst: f64,
    },
    /// Every frame in the window takes `extra` additional one-way
    /// latency (queueing at a congested hop).
    LatencySpike {
        /// Extra one-way delay added to each transmission.
        extra: Duration,
    },
    /// Each transmitted payload is corrupted with probability `prob`
    /// (one byte flipped); receivers that fail to decode drop the
    /// frame.
    Corruption {
        /// Per-transmission corruption probability.
        prob: f64,
    },
    /// The remote host is down: it neither receives nor sends. The
    /// radio itself stays healthy — RSSI and weak-signal diagnostics
    /// are unaffected, which is what lets the robot distinguish a
    /// crash from an outage.
    RemoteCrash,
}

impl FaultKind {
    /// Stable label used in `fault_begin` / `fault_end` trace events.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Blackout => "blackout",
            FaultKind::BurstLoss { .. } => "burst_loss",
            FaultKind::LatencySpike { .. } => "latency_spike",
            FaultKind::Corruption { .. } => "corruption",
            FaultKind::RemoteCrash => "remote_crash",
        }
    }
}

/// A half-open window `[from, until)` on the virtual clock during
/// which one [`FaultKind`] is active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// What goes wrong while the window is active.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Is `now` inside the window?
    pub fn contains(&self, now: SimTime) -> bool {
        now >= self.from && now < self.until
    }
}

/// An ordered list of scripted [`FaultWindow`]s.
///
/// Windows may overlap; each active window contributes its effect
/// independently (latency spikes sum, any active blackout blacks out).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    windows: Vec<FaultWindow>,
}

impl FaultSchedule {
    /// A schedule with no faults.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Builder: add a window starting `from_s` seconds into the
    /// mission, lasting `dur_s` seconds.
    pub fn with(mut self, from_s: f64, dur_s: f64, kind: FaultKind) -> Self {
        let from = SimTime::from_secs_f64(from_s);
        self.windows.push(FaultWindow {
            from,
            until: from + Duration::from_secs_f64(dur_s),
            kind,
        });
        self
    }

    /// The scripted windows, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// True when nothing is scheduled (the common, fault-free case).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Is a [`FaultKind::Blackout`] window active at `now`?
    pub fn blackout_at(&self, now: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::Blackout) && w.contains(now))
    }

    /// Is a [`FaultKind::RemoteCrash`] window active at `now`?
    pub fn crash_at(&self, now: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::RemoteCrash) && w.contains(now))
    }

    /// Sum of the extra one-way latency from every
    /// [`FaultKind::LatencySpike`] window active at `now`.
    pub fn extra_latency_at(&self, now: SimTime) -> Duration {
        let mut extra = Duration::ZERO;
        for w in &self.windows {
            if let FaultKind::LatencySpike { extra: e } = w.kind {
                if w.contains(now) {
                    extra += e;
                }
            }
        }
        extra
    }

    /// Highest corruption probability among the
    /// [`FaultKind::Corruption`] windows active at `now` (0.0 if none).
    pub fn corruption_prob_at(&self, now: SimTime) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.contains(now))
            .filter_map(|w| match w.kind {
                FaultKind::Corruption { prob } => Some(prob),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// The [`FaultKind::BurstLoss`] parameters active at `now`, if any
    /// (first matching window wins).
    pub fn burst_at(&self, now: SimTime) -> Option<(f64, f64, f64)> {
        self.windows.iter().find_map(|w| match w.kind {
            FaultKind::BurstLoss {
                p_enter,
                p_exit,
                loss_in_burst,
            } if w.contains(now) => Some((p_enter, p_exit, loss_in_burst)),
            _ => None,
        })
    }

    /// A seeded random schedule for chaos testing: one to three
    /// windows of random kind, start, and duration inside `horizon`.
    /// The same seed always yields the same schedule.
    pub fn randomized(seed: u64, horizon: Duration) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xFA_0175);
        let mut schedule = FaultSchedule::none();
        let span = horizon.as_secs_f64();
        for _ in 0..(1 + rng.index(3)) {
            let from_s = rng.uniform_range(0.05 * span, 0.6 * span);
            let dur_s = rng.uniform_range(2.0, 15.0);
            let kind = match rng.index(5) {
                0 => FaultKind::Blackout,
                1 => FaultKind::BurstLoss {
                    p_enter: rng.uniform_range(0.05, 0.3),
                    p_exit: rng.uniform_range(0.05, 0.3),
                    loss_in_burst: rng.uniform_range(0.5, 1.0),
                },
                2 => FaultKind::LatencySpike {
                    extra: Duration::from_millis(10 + rng.index(190) as u64),
                },
                3 => FaultKind::Corruption {
                    prob: rng.uniform_range(0.1, 0.6),
                },
                _ => FaultKind::RemoteCrash,
            };
            schedule = schedule.with(from_s, dur_s, kind);
        }
        schedule
    }
}

/// One kind of injected **cloud-tier** failure — the shared box's own
/// failure modes, distinct from the radio faults in [`FaultKind`]: the
/// link stays perfectly healthy while the replica pool misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CloudFaultKind {
    /// `replicas` provisioned replicas are dead for the window: they
    /// keep accruing cost (the bill does not know they crashed) but
    /// serve no capacity, so every admission queues against a smaller
    /// pool.
    ReplicaCrash {
        /// How many replicas are down (clamped to the pool size).
        replicas: u32,
    },
    /// The pool contains a straggler: executions scheduled in the
    /// window run `factor` times slower end to end (the load balancer
    /// cannot route around it).
    Straggler {
        /// End-to-end slowdown factor (> 1).
        factor: f64,
    },
    /// Scale-up decisions taken during the window fail to provision:
    /// the spin-up is paid for but no replica ever joins the pool.
    FailedScaleUp,
}

impl CloudFaultKind {
    /// Stable label used in `replica_crash` / `replica_straggle`
    /// trace events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            CloudFaultKind::ReplicaCrash { .. } => "replica_crash",
            CloudFaultKind::Straggler { .. } => "replica_straggle",
            CloudFaultKind::FailedScaleUp => "failed_scale_up",
        }
    }
}

/// A half-open window `[from, until)` during which one
/// [`CloudFaultKind`] afflicts the shared cloud box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CloudFaultWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// What goes wrong while the window is active.
    pub kind: CloudFaultKind,
}

impl CloudFaultWindow {
    /// Is `now` inside the window?
    pub fn contains(&self, now: SimTime) -> bool {
        now >= self.from && now < self.until
    }
}

/// An ordered list of scripted [`CloudFaultWindow`]s, the cloud-tier
/// sibling of [`FaultSchedule`]. Consumed by `lgv-sim`'s
/// `CloudScheduler`; an empty schedule is a structural no-op there.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CloudFaultSchedule {
    windows: Vec<CloudFaultWindow>,
}

impl CloudFaultSchedule {
    /// A schedule with no cloud faults.
    pub fn none() -> Self {
        CloudFaultSchedule::default()
    }

    /// Builder: add a window starting `from_s` seconds in, lasting
    /// `dur_s` seconds.
    pub fn with(mut self, from_s: f64, dur_s: f64, kind: CloudFaultKind) -> Self {
        let from = SimTime::from_secs_f64(from_s);
        self.windows.push(CloudFaultWindow {
            from,
            until: from + Duration::from_secs_f64(dur_s),
            kind,
        });
        self
    }

    /// The scripted windows, in insertion order.
    pub fn windows(&self) -> &[CloudFaultWindow] {
        &self.windows
    }

    /// True when nothing is scheduled (the common, fault-free case).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total replicas dead at `now` (summed across overlapping crash
    /// windows).
    pub fn crashed_at(&self, now: SimTime) -> u32 {
        self.windows
            .iter()
            .filter(|w| w.contains(now))
            .map(|w| match w.kind {
                CloudFaultKind::ReplicaCrash { replicas } => replicas,
                _ => 0,
            })
            .sum()
    }

    /// The end-to-end slowdown factor at `now` (overlapping straggler
    /// windows compound; 1.0 if none is active).
    pub fn straggle_factor_at(&self, now: SimTime) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.contains(now))
            .filter_map(|w| match w.kind {
                CloudFaultKind::Straggler { factor } => Some(factor.max(1.0)),
                _ => None,
            })
            .product::<f64>()
            .max(1.0)
    }

    /// Does a scale-up decided at `now` fail to provision?
    pub fn scale_up_fails_at(&self, now: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| matches!(w.kind, CloudFaultKind::FailedScaleUp) && w.contains(now))
    }

    /// A seeded random schedule for chaos testing: one to three
    /// windows of random kind, start, and duration inside `horizon`.
    /// The same seed always yields the same schedule.
    pub fn randomized(seed: u64, horizon: Duration) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xC1_0D_FA);
        let mut schedule = CloudFaultSchedule::none();
        let span = horizon.as_secs_f64();
        for _ in 0..(1 + rng.index(3)) {
            let from_s = rng.uniform_range(0.05 * span, 0.6 * span);
            let dur_s = rng.uniform_range(2.0, 15.0);
            let kind = match rng.index(3) {
                0 => CloudFaultKind::ReplicaCrash {
                    replicas: 1 + rng.index(2) as u32,
                },
                1 => CloudFaultKind::Straggler {
                    factor: rng.uniform_range(1.5, 4.0),
                },
                _ => CloudFaultKind::FailedScaleUp,
            };
            schedule = schedule.with(from_s, dur_s, kind);
        }
        schedule
    }
}

/// Applies a [`FaultSchedule`] inside one channel.
///
/// Each channel owns its own injector with an [`SimRng`] forked from
/// the channel's stream, so fault randomness (burst-chain advances,
/// corruption draws) never perturbs the channel's pre-existing loss
/// and jitter draws — and stays deterministic per seed.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    schedule: FaultSchedule,
    rng: SimRng,
    /// Gilbert–Elliott chain state: currently in the bad (bursty) state?
    in_burst: bool,
    /// Does the remote host sit at this channel's *receiving* end?
    /// (Uplink and the migration TCP channel: yes; downlink: no.)
    remote_receives: bool,
}

impl FaultInjector {
    /// Injector over `schedule`; `remote_receives` marks channels
    /// whose destination is the remote host (their in-flight frames
    /// are swallowed when a [`FaultKind::RemoteCrash`] is active).
    pub fn new(schedule: FaultSchedule, rng: SimRng, remote_receives: bool) -> Self {
        FaultInjector {
            schedule,
            rng,
            in_burst: false,
            remote_receives,
        }
    }

    /// A no-op injector (empty schedule) for channels built without
    /// fault wiring.
    pub fn disabled() -> Self {
        FaultInjector::new(FaultSchedule::none(), SimRng::seed_from_u64(0), false)
    }

    /// Nothing scheduled — the fast path can skip fault bookkeeping.
    pub fn is_disabled(&self) -> bool {
        self.schedule.is_empty()
    }

    /// Should a transmission launched at `now` be dropped outright?
    ///
    /// Blackouts and crashes drop everything; burst-loss windows
    /// advance the Gilbert–Elliott chain one step per transmission and
    /// drop probabilistically while the chain is in the bad state.
    pub fn drops_at_send(&mut self, now: SimTime) -> bool {
        if self.schedule.is_empty() {
            return false;
        }
        if self.schedule.blackout_at(now) || self.schedule.crash_at(now) {
            return true;
        }
        match self.schedule.burst_at(now) {
            Some((p_enter, p_exit, loss_in_burst)) => {
                if self.in_burst {
                    if self.rng.chance(p_exit) {
                        self.in_burst = false;
                    }
                } else if self.rng.chance(p_enter) {
                    self.in_burst = true;
                }
                self.in_burst && self.rng.chance(loss_in_burst)
            }
            None => {
                self.in_burst = false;
                false
            }
        }
    }

    /// Should a frame *arriving* at `now` be swallowed?
    ///
    /// True only while a crash window is active on a channel whose
    /// receiver is the remote host: frames launched before the crash
    /// land at a dead box. Frames already in flight *towards the
    /// robot* still arrive — the robot is alive.
    pub fn swallows_at_delivery(&self, now: SimTime) -> bool {
        self.remote_receives && self.schedule.crash_at(now)
    }

    /// Should the payload of a transmission at `now` be corrupted?
    pub fn corrupts(&mut self, now: SimTime) -> bool {
        if self.schedule.is_empty() {
            return false;
        }
        let prob = self.schedule.corruption_prob_at(now);
        prob > 0.0 && self.rng.chance(prob)
    }

    /// Flip one byte of `payload` (at a seeded random offset), the
    /// canonical "failed checksum" corruption. Empty payloads pass
    /// through unchanged.
    pub fn corrupt_payload(&mut self, payload: &bytes::Bytes) -> bytes::Bytes {
        if payload.is_empty() {
            return payload.clone();
        }
        let mut buf = payload.to_vec();
        let idx = self.rng.index(buf.len());
        buf[idx] ^= 0xFF;
        bytes::Bytes::from(buf)
    }
}

/// Tracks which windows of a schedule have begun/ended so the mission
/// engine can emit exactly one `fault_begin` and one `fault_end` trace
/// event per window as virtual time crosses its edges.
#[derive(Debug, Clone)]
pub struct FaultClock {
    schedule: FaultSchedule,
    begun: Vec<bool>,
    ended: Vec<bool>,
}

/// One edge reported by [`FaultClock::poll`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEdge {
    /// Index of the window in the schedule.
    pub window: u64,
    /// The window's fault kind.
    pub kind: FaultKind,
    /// True at the window's start, false at its end.
    pub begin: bool,
    /// The window's scripted length.
    pub span: Duration,
}

impl FaultClock {
    /// Clock over `schedule`, with no edges reported yet.
    pub fn new(schedule: FaultSchedule) -> Self {
        let n = schedule.windows().len();
        FaultClock {
            schedule,
            begun: vec![false; n],
            ended: vec![false; n],
        }
    }

    /// Report every window edge crossed up to `now`, in schedule
    /// order, each exactly once.
    pub fn poll(&mut self, now: SimTime) -> Vec<FaultEdge> {
        let mut edges = Vec::new();
        for (i, w) in self.schedule.windows().iter().enumerate() {
            let span = w.until.saturating_since(w.from);
            if !self.begun[i] && now >= w.from {
                self.begun[i] = true;
                edges.push(FaultEdge {
                    window: i as u64,
                    kind: w.kind,
                    begin: true,
                    span,
                });
            }
            if !self.ended[i] && now >= w.until {
                self.ended[i] = true;
                edges.push(FaultEdge {
                    window: i as u64,
                    kind: w.kind,
                    begin: false,
                    span,
                });
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn windows_are_half_open() {
        let s = FaultSchedule::none().with(10.0, 5.0, FaultKind::Blackout);
        assert!(!s.blackout_at(t(9.999)));
        assert!(s.blackout_at(t(10.0)));
        assert!(s.blackout_at(t(14.999)));
        assert!(!s.blackout_at(t(15.0)));
    }

    #[test]
    fn latency_spikes_sum_when_overlapping() {
        let s = FaultSchedule::none()
            .with(
                0.0,
                10.0,
                FaultKind::LatencySpike {
                    extra: Duration::from_millis(40),
                },
            )
            .with(
                5.0,
                10.0,
                FaultKind::LatencySpike {
                    extra: Duration::from_millis(60),
                },
            );
        assert_eq!(s.extra_latency_at(t(2.0)), Duration::from_millis(40));
        assert_eq!(s.extra_latency_at(t(7.0)), Duration::from_millis(100));
        assert_eq!(s.extra_latency_at(t(16.0)), Duration::ZERO);
    }

    #[test]
    fn blackout_and_crash_drop_every_send() {
        let s = FaultSchedule::none()
            .with(0.0, 1.0, FaultKind::Blackout)
            .with(2.0, 1.0, FaultKind::RemoteCrash);
        let mut inj = FaultInjector::new(s, SimRng::seed_from_u64(1), true);
        assert!(inj.drops_at_send(t(0.5)));
        assert!(inj.drops_at_send(t(2.5)));
        assert!(!inj.drops_at_send(t(1.5)));
    }

    #[test]
    fn crash_swallows_only_at_the_remote_end() {
        let s = FaultSchedule::none().with(0.0, 1.0, FaultKind::RemoteCrash);
        let up = FaultInjector::new(s.clone(), SimRng::seed_from_u64(1), true);
        let down = FaultInjector::new(s, SimRng::seed_from_u64(1), false);
        assert!(up.swallows_at_delivery(t(0.5)));
        assert!(!down.swallows_at_delivery(t(0.5)));
        assert!(!up.swallows_at_delivery(t(1.5)));
    }

    #[test]
    fn burst_loss_comes_in_bursts() {
        let s = FaultSchedule::none().with(
            0.0,
            100.0,
            FaultKind::BurstLoss {
                p_enter: 0.05,
                p_exit: 0.05,
                loss_in_burst: 1.0,
            },
        );
        let mut inj = FaultInjector::new(s, SimRng::seed_from_u64(7), true);
        let drops: Vec<bool> = (0..2000)
            .map(|i| inj.drops_at_send(t(i as f64 * 0.01)))
            .collect();
        let losses = drops.iter().filter(|d| **d).count();
        // The chain spends roughly half its time in each state.
        assert!(losses > 400 && losses < 1600, "losses={losses}");
        // Losses cluster: consecutive-loss pairs beat the independent
        // expectation (≈p²·n) by the chain's stickiness (≈p·(1−p_exit)·n).
        let pairs = drops.windows(2).filter(|w| w[0] && w[1]).count();
        let p = losses as f64 / drops.len() as f64;
        let independent = p * p * (drops.len() - 1) as f64;
        assert!(
            pairs as f64 > 1.5 * independent,
            "pairs={pairs} vs independent {independent:.1}"
        );
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let s = FaultSchedule::none().with(0.0, 1.0, FaultKind::Corruption { prob: 1.0 });
        let mut inj = FaultInjector::new(s, SimRng::seed_from_u64(3), true);
        assert!(inj.corrupts(t(0.5)));
        let orig = bytes::Bytes::from(vec![0u8; 64]);
        let bad = inj.corrupt_payload(&orig);
        let diffs = orig.iter().zip(bad.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn randomized_schedules_are_reproducible_and_bounded() {
        let horizon = Duration::from_secs(120);
        let a = FaultSchedule::randomized(9, horizon);
        let b = FaultSchedule::randomized(9, horizon);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.windows().len() <= 3);
        for w in a.windows() {
            assert!(w.from >= SimTime::EPOCH && w.until <= SimTime::EPOCH + horizon);
        }
        assert_ne!(a, FaultSchedule::randomized(10, horizon));
    }

    #[test]
    fn cloud_schedule_queries_compose_over_overlaps() {
        let s = CloudFaultSchedule::none()
            .with(1.0, 4.0, CloudFaultKind::ReplicaCrash { replicas: 1 })
            .with(3.0, 4.0, CloudFaultKind::ReplicaCrash { replicas: 2 })
            .with(2.0, 2.0, CloudFaultKind::Straggler { factor: 2.0 })
            .with(3.0, 2.0, CloudFaultKind::Straggler { factor: 1.5 })
            .with(6.0, 1.0, CloudFaultKind::FailedScaleUp);
        assert_eq!(s.crashed_at(t(0.5)), 0);
        assert_eq!(s.crashed_at(t(1.0)), 1);
        assert_eq!(s.crashed_at(t(3.5)), 3, "overlapping crashes sum");
        assert_eq!(s.crashed_at(t(5.5)), 2);
        assert_eq!(s.straggle_factor_at(t(1.0)), 1.0);
        assert_eq!(s.straggle_factor_at(t(2.5)), 2.0);
        assert_eq!(s.straggle_factor_at(t(3.5)), 3.0, "stragglers compound");
        assert!(!s.scale_up_fails_at(t(5.5)));
        assert!(s.scale_up_fails_at(t(6.0)));
        assert!(!s.scale_up_fails_at(t(7.0)));
    }

    #[test]
    fn cloud_randomized_schedules_are_reproducible_and_bounded() {
        let horizon = Duration::from_secs(120);
        let a = CloudFaultSchedule::randomized(9, horizon);
        let b = CloudFaultSchedule::randomized(9, horizon);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.windows().len() <= 3);
        for w in a.windows() {
            assert!(w.from >= SimTime::EPOCH && w.until <= SimTime::EPOCH + horizon);
        }
        assert_ne!(a, CloudFaultSchedule::randomized(10, horizon));
        // Cloud and channel schedules draw from distinct streams, so
        // pairing them under one seed does not correlate their windows.
        assert_ne!(
            format!("{:?}", CloudFaultSchedule::randomized(9, horizon)),
            format!("{:?}", FaultSchedule::randomized(9, horizon))
        );
    }

    #[test]
    fn fault_clock_reports_each_edge_once() {
        let s = FaultSchedule::none()
            .with(1.0, 2.0, FaultKind::Blackout)
            .with(2.0, 1.0, FaultKind::RemoteCrash);
        let mut clock = FaultClock::new(s);
        assert!(clock.poll(t(0.5)).is_empty());
        let e = clock.poll(t(1.0));
        assert_eq!(e.len(), 1);
        assert!(e[0].begin && e[0].kind == FaultKind::Blackout);
        // Jump past several edges at once: both remaining begins/ends arrive together.
        let e = clock.poll(t(10.0));
        assert_eq!(e.len(), 3);
        assert!(clock.poll(t(20.0)).is_empty());
    }
}
