//! Reliable, in-order channel (the "TCP" of the paper's §VII: "each
//! VM is connected to an LGV via TCP/UDP").
//!
//! Control traffic — node migration commands, state transfer during an
//! Algorithm 2 switch, map uploads — must arrive completely and in
//! order, unlike the freshness-first VDP streams. [`TcpChannel`]
//! provides that over the same lossy radio: stop-and-wait
//! retransmission with a retransmission timeout, cumulative in-order
//! delivery, and head-of-line blocking (the defining behavioural
//! difference from [`crate::channel::UdpChannel`] — *latency spikes
//! instead of loss*).
//!
//! The window is deliberately 1 segment (stop-and-wait): control
//! traffic is tiny, and the simple protocol keeps the simulation
//! exactly analysable in tests.

use crate::fault::{FaultInjector, FaultSchedule};
use crate::signal::SignalModel;
use bytes::Bytes;
use lgv_trace::{MsgId, SendKind, TraceEvent, Tracer};
use lgv_types::prelude::*;
use std::collections::VecDeque;

/// Channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Segments accepted from the application.
    pub queued: u64,
    /// Transmission attempts (including retransmissions).
    pub attempts: u64,
    /// Segments lost in the air (recovered by retransmission).
    pub losses: u64,
    /// Segments fully delivered to the receiver.
    pub delivered: u64,
    /// Segments flushed by [`TcpChannel::cancel_pending`] before
    /// delivery (aborted transfers).
    pub cancelled: u64,
}

#[derive(Debug, Clone)]
struct Segment {
    seq: u64,
    payload: Bytes,
    queued_at: SimTime,
    /// Lineage id of the logical message the segment belongs to
    /// ([`MsgId::NONE`] for untagged traffic).
    msg: MsgId,
}

/// Reliable in-order channel over the radio model.
#[derive(Debug, Clone)]
pub struct TcpChannel {
    signal: SignalModel,
    wan_latency: Duration,
    rto: Duration,
    rng: SimRng,
    next_seq: u64,
    /// Unsent + unacknowledged segments, in order.
    send_queue: VecDeque<Segment>,
    /// Head-of-queue state: when the in-flight copy (if any) will be
    /// acknowledged, or when to retransmit.
    in_flight: Option<InFlight>,
    /// Delivered segments awaiting the application.
    rx_queue: VecDeque<(u64, Bytes, SimTime)>,
    stats: TcpStats,
    tracer: Tracer,
    /// Direction label stamped on trace events (`tcp` by default).
    trace_dir: &'static str,
    /// Scripted fault windows applied to this channel (no-op by default).
    faults: FaultInjector,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    /// When the receiver gets the segment (None = this copy was lost).
    arrives: Option<SimTime>,
    /// When the sender sees the cumulative ack (success path).
    acked: Option<SimTime>,
    /// When the retransmission timer fires.
    rto_at: SimTime,
}

impl TcpChannel {
    /// Build a reliable channel over `signal`, with an extra wired
    /// segment of `wan_latency` and a fixed retransmission timeout.
    pub fn new(signal: SignalModel, wan_latency: Duration, rng: SimRng) -> Self {
        TcpChannel {
            signal,
            wan_latency,
            rto: Duration::from_millis(200),
            rng,
            next_seq: 0,
            send_queue: VecDeque::new(),
            in_flight: None,
            rx_queue: VecDeque::new(),
            stats: TcpStats::default(),
            tracer: Tracer::disabled(),
            trace_dir: "tcp",
            faults: FaultInjector::disabled(),
        }
    }

    /// Install scripted fault windows. The reliable channel always
    /// terminates at the remote host, so a
    /// [`crate::fault::FaultKind::RemoteCrash`] window loses every
    /// launch (no acks from a dead box) and the retransmission timer
    /// carries the transfer across the window.
    pub fn set_faults(&mut self, schedule: FaultSchedule) {
        self.signal.set_faults(schedule.clone());
        self.faults = FaultInjector::new(schedule, self.rng.fork(0xFA17), true);
    }

    /// Route this channel's send/loss/deliver events to `tracer`,
    /// labelled with the direction `dir` (`"tcp"` for the shared
    /// control channel).
    pub fn set_tracer(&mut self, tracer: Tracer, dir: &'static str) {
        self.tracer = tracer;
        self.trace_dir = dir;
    }

    /// Override the retransmission timeout.
    pub fn set_rto(&mut self, rto: Duration) {
        assert!(rto > Duration::ZERO);
        self.rto = rto;
    }

    /// Queue a payload for reliable delivery. Never drops; large
    /// backlogs simply take longer (head-of-line blocking).
    pub fn send(&mut self, now: SimTime, payload: Bytes) -> u64 {
        self.send_tagged(now, payload, MsgId::NONE)
    }

    /// Like [`TcpChannel::send`], carrying the lineage id of the
    /// logical message the segment belongs to.
    pub fn send_tagged(&mut self, now: SimTime, payload: Bytes, msg: MsgId) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.queued += 1;
        let bytes = payload.len() as u64;
        self.tracer
            .emit_with_at(now.as_nanos(), || TraceEvent::ChannelSend {
                dir: self.trace_dir.to_string(),
                seq,
                bytes,
                outcome: SendKind::Transmitted,
                msg,
            });
        self.send_queue.push_back(Segment {
            seq,
            payload,
            queued_at: now,
            msg,
        });
        seq
    }

    fn launch_head(&mut self, now: SimTime, robot: Point2) {
        let Some(head) = self.send_queue.front() else {
            return;
        };
        self.stats.attempts += 1;
        let lost = self.faults.drops_at_send(now)
            || self.rng.chance(self.signal.loss_prob_at(robot, now))
            || self.signal.is_weak_at(robot, now) && self.rng.chance(0.5);
        let one_way = self.signal.tx_delay_at(head.payload.len(), now)
            + self.wan_latency
            + self.signal.config().jitter * self.rng.uniform();
        if lost {
            self.stats.losses += 1;
            let (seq, msg) = (head.seq, head.msg);
            self.tracer
                .emit_with_at(now.as_nanos(), || TraceEvent::ChannelLoss {
                    dir: self.trace_dir.to_string(),
                    seq,
                    msg,
                });
            self.in_flight = Some(InFlight {
                arrives: None,
                acked: None,
                rto_at: now + self.rto,
            });
        } else {
            let arrives = now + one_way;
            // Ack is small: base latency + WAN back.
            let acked = arrives + self.signal.tx_delay(16) + self.wan_latency;
            self.in_flight = Some(InFlight {
                arrives: Some(arrives),
                acked: Some(acked),
                rto_at: now + self.rto,
            });
        }
    }

    /// Advance the protocol to `now` with the robot at `robot`.
    pub fn tick(&mut self, now: SimTime, robot: Point2) {
        loop {
            match self.in_flight {
                None => {
                    if self.send_queue.is_empty() {
                        return;
                    }
                    self.launch_head(now, robot);
                    // Protocol events for the launched copy resolve on
                    // later ticks (or below if already due).
                }
                Some(f) => {
                    // Delivery event.
                    if let (Some(arrives), Some(acked)) = (f.arrives, f.acked) {
                        if acked <= now {
                            let seg = self.send_queue.pop_front().expect("in-flight head");
                            // Stamped at the observing tick; the true
                            // queue-to-receiver latency rides along.
                            let (seq, msg) = (seg.seq, seg.msg);
                            let latency = arrives.saturating_since(seg.queued_at);
                            self.tracer.emit_with_at(now.as_nanos(), || {
                                TraceEvent::ChannelDeliver {
                                    dir: self.trace_dir.to_string(),
                                    seq,
                                    msg,
                                    latency_ns: latency.as_nanos(),
                                }
                            });
                            self.rx_queue.push_back((seg.seq, seg.payload, arrives));
                            self.stats.delivered += 1;
                            self.in_flight = None;
                            continue; // launch the next segment
                        }
                        return; // waiting on the ack
                    }
                    // Lost copy: retransmit at RTO.
                    if f.rto_at <= now {
                        self.launch_head(now, robot);
                        continue;
                    }
                    return;
                }
            }
        }
    }

    /// Receive the next in-order payload, with its sequence number and
    /// arrival time.
    pub fn recv(&mut self) -> Option<(u64, Bytes, SimTime)> {
        self.rx_queue.pop_front()
    }

    /// Segments queued but not yet delivered.
    pub fn backlog(&self) -> usize {
        self.send_queue.len()
    }

    /// Abandon the transfer: flush every queued segment, the in-flight
    /// copy, and any delivered-but-undrained payloads. Returns the
    /// number of segments flushed from the send side. Without this, an
    /// aborted transfer's segments would keep retransmitting (burning
    /// bandwidth) and head-of-line-block the *next* transfer behind
    /// stale traffic nobody will drain.
    pub fn cancel_pending(&mut self) -> usize {
        let flushed = self.send_queue.len();
        self.stats.cancelled += flushed as u64;
        self.send_queue.clear();
        self.in_flight = None;
        self.rx_queue.clear();
        flushed
    }

    /// Protocol statistics.
    pub fn stats(&self) -> TcpStats {
        self.stats
    }

    /// Age of the oldest undelivered segment (how far behind the
    /// reliable stream is — the head-of-line blocking observable).
    pub fn head_age(&self, now: SimTime) -> Option<Duration> {
        self.send_queue
            .front()
            .map(|s| now.saturating_since(s.queued_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::WirelessConfig;

    fn channel(loss_mid_shift: f64) -> TcpChannel {
        let cfg = WirelessConfig {
            loss_mid_dbm: -76.0 + loss_mid_shift,
            jitter: Duration::ZERO,
            ..WirelessConfig::default()
        }
        .with_weak_radius(25.0);
        let sm = SignalModel::new(cfg, Point2::new(0.0, 0.0));
        TcpChannel::new(sm, Duration::from_millis(10), SimRng::seed_from_u64(3))
    }

    fn near() -> Point2 {
        Point2::new(1.0, 0.0)
    }

    #[test]
    fn delivers_in_order_without_loss() {
        let mut ch = channel(0.0);
        for i in 0..5u8 {
            ch.send(
                SimTime::EPOCH + Duration::from_millis(i as u64),
                Bytes::from(vec![i]),
            );
        }
        let mut t = SimTime::EPOCH;
        let mut got = vec![];
        for _ in 0..100 {
            t += Duration::from_millis(10);
            ch.tick(t, near());
            while let Some((seq, payload, _)) = ch.recv() {
                got.push((seq, payload[0]));
            }
        }
        assert_eq!(got, vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
        assert_eq!(ch.backlog(), 0);
        assert_eq!(ch.stats().delivered, 5);
    }

    #[test]
    fn retransmits_through_a_lossy_zone() {
        // Loss midpoint shifted so the test position is very lossy but
        // not "weak" (driver never blocks TCP — it just retries).
        let mut ch = channel(12.0);
        let pos = Point2::new(18.0, 0.0);
        for i in 0..10u8 {
            ch.send(SimTime::EPOCH, Bytes::from(vec![i]));
        }
        let mut t = SimTime::EPOCH;
        let mut got = 0;
        for _ in 0..3000 {
            t += Duration::from_millis(20);
            ch.tick(t, pos);
            while ch.recv().is_some() {
                got += 1;
            }
        }
        assert_eq!(got, 10, "reliable channel must deliver everything");
        let s = ch.stats();
        assert!(s.losses > 0, "expected losses to be exercised");
        assert!(s.attempts > s.delivered, "retransmissions happened");
    }

    #[test]
    fn head_of_line_blocking_shows_as_latency() {
        let mut ch = channel(12.0);
        let lossy = Point2::new(18.0, 0.0);
        ch.send(SimTime::EPOCH, Bytes::from_static(b"head"));
        ch.send(SimTime::EPOCH, Bytes::from_static(b"tail"));
        let mut t = SimTime::EPOCH;
        let mut worst_age = Duration::ZERO;
        while ch.backlog() > 0 {
            t += Duration::from_millis(20);
            ch.tick(t, lossy);
            if let Some(age) = ch.head_age(t) {
                worst_age = worst_age.max(age);
            }
            assert!(t < SimTime::EPOCH + Duration::from_secs(120), "livelock");
            while ch.recv().is_some() {}
        }
        // Unlike UDP (which would have silently dropped), the reliable
        // stream fell behind instead.
        assert!(
            worst_age >= Duration::from_millis(200),
            "head age {worst_age}"
        );
    }

    #[test]
    fn weak_signal_does_not_silently_drop() {
        let mut ch = channel(0.0);
        let weak = Point2::new(120.0, 0.0); // loss probability ~1 out here
        ch.send(SimTime::EPOCH, Bytes::from_static(b"state"));
        // Deep in the dead zone nothing gets through…
        let mut t = SimTime::EPOCH;
        for _ in 0..50 {
            t += Duration::from_millis(50);
            ch.tick(t, weak);
        }
        assert_eq!(ch.backlog(), 1, "segment still queued, not dropped");
        // …and delivery resumes when the robot returns.
        for _ in 0..100 {
            t += Duration::from_millis(50);
            ch.tick(t, near());
        }
        assert!(ch.recv().is_some(), "segment delivered after recovery");
    }

    #[test]
    fn trace_covers_send_loss_and_deliver() {
        use lgv_trace::{RingBufferSink, Tracer};
        let mut ch = channel(12.0);
        let tracer = Tracer::enabled();
        let ring = tracer.attach(RingBufferSink::new(256));
        ch.set_tracer(tracer, "tcp");
        let pos = Point2::new(18.0, 0.0);
        ch.send_tagged(SimTime::EPOCH, Bytes::from_static(b"state"), MsgId(9));
        let mut t = SimTime::EPOCH;
        while ch.stats().delivered == 0 {
            t += Duration::from_millis(20);
            ch.tick(t, pos);
            assert!(t < SimTime::EPOCH + Duration::from_secs(120), "livelock");
        }
        let ring = ring.lock().unwrap();
        let mut saw_send = false;
        let mut saw_deliver = false;
        for r in ring.records() {
            match &r.event {
                TraceEvent::ChannelSend { dir, msg, .. } => {
                    assert_eq!(dir, "tcp");
                    assert_eq!(*msg, MsgId(9));
                    saw_send = true;
                }
                TraceEvent::ChannelDeliver { dir, msg, .. } => {
                    assert_eq!(dir, "tcp");
                    assert_eq!(*msg, MsgId(9));
                    saw_deliver = true;
                }
                TraceEvent::ChannelLoss { msg, .. } => assert_eq!(*msg, MsgId(9)),
                _ => {}
            }
        }
        assert!(saw_send && saw_deliver);
    }

    #[test]
    fn cancel_pending_flushes_queue_flight_and_rx() {
        let mut ch = channel(0.0);
        for i in 0..6u8 {
            ch.send(SimTime::EPOCH, Bytes::from(vec![i]));
        }
        // Let a couple land (undrained) and one sit in flight.
        let mut t = SimTime::EPOCH;
        for _ in 0..10 {
            t += Duration::from_millis(10);
            ch.tick(t, near());
        }
        assert!(ch.stats().delivered > 0);
        let flushed = ch.cancel_pending();
        assert!(flushed > 0);
        assert_eq!(ch.backlog(), 0);
        assert!(ch.recv().is_none(), "stale deliveries flushed too");
        assert_eq!(ch.stats().cancelled, flushed as u64);
        // A fresh transfer is not blocked behind stale segments.
        ch.send(t, Bytes::from_static(b"fresh"));
        for _ in 0..50 {
            t += Duration::from_millis(10);
            ch.tick(t, near());
        }
        let (_, payload, _) = ch.recv().expect("fresh segment delivered");
        assert_eq!(&payload[..], b"fresh");
    }

    #[test]
    fn crash_window_stalls_transfer_until_restart() {
        use crate::fault::{FaultKind, FaultSchedule};
        let mut ch = channel(0.0);
        ch.set_faults(FaultSchedule::none().with(0.0, 5.0, FaultKind::RemoteCrash));
        ch.send(SimTime::EPOCH, Bytes::from_static(b"state"));
        let mut t = SimTime::EPOCH;
        // While the host is down nothing is acknowledged…
        for _ in 0..400 {
            t += Duration::from_millis(10);
            ch.tick(t, near());
        }
        assert_eq!(ch.stats().delivered, 0, "dead host acks nothing");
        assert!(ch.stats().losses > 0, "every launch into the crash is lost");
        // …and the RTO machinery completes the transfer after restart.
        for _ in 0..200 {
            t += Duration::from_millis(10);
            ch.tick(t, near());
        }
        assert!(ch.recv().is_some(), "transfer lands once the host is back");
    }

    #[test]
    fn arrival_times_are_monotone() {
        let mut ch = channel(6.0);
        for i in 0..8u8 {
            ch.send(SimTime::EPOCH, Bytes::from(vec![i]));
        }
        let mut t = SimTime::EPOCH;
        let mut last = SimTime::EPOCH;
        let mut n = 0;
        for _ in 0..2000 {
            t += Duration::from_millis(10);
            ch.tick(t, Point2::new(10.0, 0.0));
            while let Some((_, _, arrived)) = ch.recv() {
                assert!(arrived >= last, "in-order arrival");
                last = arrived;
                n += 1;
            }
        }
        assert_eq!(n, 8);
    }
}
