//! Network-quality metrics for Algorithm 2.
//!
//! The paper replaces latency metrics (which UDP "best-effort
//! delivery" renders misleading, Fig. 7/11) with two robust signals:
//!
//! * **packet bandwidth** — the receive rate over a sliding window;
//!   with a fixed send rate it directly reflects loss;
//! * **signal direction** — whether the LGV is moving towards or away
//!   from the WAP, derived from its internal model of the environment.
//!
//! An [`RttTracker`] is still provided (the Profiler uses RTT for the
//! VDP makespan), plus it lets the ablation benches demonstrate *why*
//! latency alone fails.

use lgv_types::prelude::*;
use std::collections::VecDeque;

/// Receive-rate meter over a sliding time window.
#[derive(Debug, Clone)]
pub struct BandwidthMeter {
    window: Duration,
    arrivals: VecDeque<SimTime>,
}

impl BandwidthMeter {
    /// Meter with the given sliding window (the paper uses 1 s).
    pub fn new(window: Duration) -> Self {
        assert!(window > Duration::ZERO);
        BandwidthMeter {
            window,
            arrivals: VecDeque::new(),
        }
    }

    /// Record a packet arrival. Arrival stamps must be non-decreasing
    /// (the simulated channel delivers in arrival order); the sliding
    /// eviction relies on it.
    pub fn record(&mut self, at: SimTime) {
        debug_assert!(
            self.arrivals.back().is_none_or(|&b| b <= at),
            "arrivals must be monotone"
        );
        self.arrivals.push_back(at);
    }

    fn evict(&mut self, now: SimTime) {
        while let Some(&front) = self.arrivals.front() {
            if now.saturating_since(front) > self.window {
                self.arrivals.pop_front();
            } else {
                break;
            }
        }
    }

    /// Packets per second observed over the window ending at `now`.
    pub fn rate(&mut self, now: SimTime) -> f64 {
        self.evict(now);
        self.arrivals.len() as f64 / self.window.as_secs_f64()
    }

    /// Packets currently inside the window.
    pub fn count(&mut self, now: SimTime) -> usize {
        self.evict(now);
        self.arrivals.len()
    }
}

/// Estimates whether the LGV approaches (+1) or retreats from (−1)
/// the WAP, smoothed to ignore jitter. The WAP position is assumed
/// marked in the LGV's internal map (paper §VI-A).
#[derive(Debug, Clone)]
pub struct SignalDirectionEstimator {
    wap: Point2,
    last: Option<(SimTime, f64)>,
    /// Exponentially smoothed radial velocity (m/s, positive = towards
    /// the WAP).
    smoothed: f64,
    alpha: f64,
}

impl SignalDirectionEstimator {
    /// Estimator for a WAP at the given position.
    pub fn new(wap: Point2) -> Self {
        SignalDirectionEstimator {
            wap,
            last: None,
            smoothed: 0.0,
            alpha: 0.3,
        }
    }

    /// Feed the latest robot position; returns the smoothed direction.
    pub fn update(&mut self, now: SimTime, robot: Point2) -> f64 {
        let dist = robot.distance(self.wap);
        if let Some((t_prev, d_prev)) = self.last {
            let dt = now.saturating_since(t_prev).as_secs_f64();
            if dt > 1e-6 {
                // Positive when the distance shrinks.
                let v = (d_prev - dist) / dt;
                self.smoothed = self.alpha * v + (1.0 - self.alpha) * self.smoothed;
            }
        }
        self.last = Some((now, dist));
        self.smoothed
    }

    /// Current direction: > 0 approaching, < 0 retreating (the `d_t`
    /// of Algorithm 2).
    pub fn direction(&self) -> f64 {
        self.smoothed
    }
}

/// Round-trip-time tracker with simple order statistics, kept for the
/// VDP-makespan profiler and for the latency-metric ablation.
#[derive(Debug, Clone)]
pub struct RttTracker {
    cap: usize,
    samples: VecDeque<Duration>,
}

impl RttTracker {
    /// Tracker remembering up to `cap` recent samples.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        RttTracker {
            cap,
            samples: VecDeque::new(),
        }
    }

    /// Record an RTT sample.
    pub fn record(&mut self, rtt: Duration) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back(rtt);
    }

    /// Most recent sample.
    pub fn latest(&self) -> Option<Duration> {
        self.samples.back().copied()
    }

    /// Mean of the retained samples.
    pub fn mean(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let total: f64 = self.samples.iter().map(|d| d.as_secs_f64()).sum();
        Some(Duration::from_secs_f64(total / self.samples.len() as f64))
    }

    /// Percentile (0–100) of the retained samples (nearest-rank).
    pub fn percentile(&self, pct: f64) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut v: Vec<Duration> = self.samples.iter().copied().collect();
        v.sort_unstable();
        let rank = ((pct / 100.0) * v.len() as f64).ceil().max(1.0) as usize - 1;
        Some(v[rank.min(v.len() - 1)])
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_counts_window() {
        let mut m = BandwidthMeter::new(Duration::from_secs(1));
        for i in 0..5 {
            m.record(SimTime::EPOCH + Duration::from_millis(200 * i));
        }
        // At t = 1 s all five arrivals are inside the window.
        assert_eq!(m.rate(SimTime::EPOCH + Duration::from_secs(1)), 5.0);
        // At t = 2.1 s they have all aged out.
        assert_eq!(m.rate(SimTime::EPOCH + Duration::from_millis(2100)), 0.0);
    }

    #[test]
    fn bandwidth_reflects_loss() {
        let mut m = BandwidthMeter::new(Duration::from_secs(1));
        // 5 Hz sender, but only 1 packet survives each second.
        m.record(SimTime::EPOCH + Duration::from_millis(100));
        assert_eq!(m.count(SimTime::EPOCH + Duration::from_secs(1)), 1);
    }

    #[test]
    fn direction_positive_when_approaching() {
        let mut d = SignalDirectionEstimator::new(Point2::new(0.0, 0.0));
        for i in 0..20 {
            let t = SimTime::EPOCH + Duration::from_millis(200 * i);
            // Walk from x = 20 towards the WAP.
            d.update(t, Point2::new(20.0 - i as f64, 0.0));
        }
        assert!(d.direction() > 0.0);
    }

    #[test]
    fn direction_negative_when_retreating() {
        let mut d = SignalDirectionEstimator::new(Point2::new(0.0, 0.0));
        for i in 0..20 {
            let t = SimTime::EPOCH + Duration::from_millis(200 * i);
            d.update(t, Point2::new(2.0 + i as f64, 0.0));
        }
        assert!(d.direction() < 0.0);
    }

    #[test]
    fn direction_flips_at_turnaround() {
        let mut d = SignalDirectionEstimator::new(Point2::new(0.0, 0.0));
        let mut i = 0u64;
        // Out for 30 steps…
        for k in 0..30 {
            d.update(
                SimTime::EPOCH + Duration::from_millis(200 * i),
                Point2::new(k as f64, 0.0),
            );
            i += 1;
        }
        assert!(d.direction() < 0.0);
        // …then back.
        for k in (0..30).rev() {
            d.update(
                SimTime::EPOCH + Duration::from_millis(200 * i),
                Point2::new(k as f64, 0.0),
            );
            i += 1;
        }
        assert!(d.direction() > 0.0);
    }

    #[test]
    fn rtt_tracker_stats() {
        let mut r = RttTracker::new(10);
        assert!(r.is_empty());
        for ms in [10u64, 20, 30, 40] {
            r.record(Duration::from_millis(ms));
        }
        assert_eq!(r.latest(), Some(Duration::from_millis(40)));
        assert_eq!(r.mean(), Some(Duration::from_millis(25)));
        assert_eq!(r.percentile(50.0), Some(Duration::from_millis(20)));
        assert_eq!(r.percentile(99.0), Some(Duration::from_millis(40)));
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn rtt_tracker_evicts_oldest() {
        let mut r = RttTracker::new(3);
        for ms in [1u64, 2, 3, 4] {
            r.record(Duration::from_millis(ms));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.percentile(0.0), Some(Duration::from_millis(2)));
    }
}
