//! # lgv-net
//!
//! Simulated networking between the LGV and the remote server:
//!
//! * [`signal`] — log-distance path-loss radio model around a wireless
//!   access point (WAP), with a weak-signal region where the driver
//!   blocks the kernel buffer.
//! * [`channel`] — a virtual-time UDP channel reproducing the exact
//!   failure mode of the paper's Fig. 7: under weak signal the driver
//!   holds one packet in the kernel buffer and the non-blocking socket
//!   silently discards the rest, so *measured* latency stays healthy
//!   while real throughput collapses. Also a TCP-like reliable channel
//!   for control traffic.
//! * [`link`] — duplex robot↔server links, with an optional wired WAN
//!   segment modelling the lab→datacenter hop.
//! * [`measure`] — the metrics Algorithm 2 consumes: packet bandwidth
//!   (receive rate), signal direction, and RTT tracking.
//! * [`shared`] — deterministic shared-spectrum contention for fleets:
//!   concurrent uplinks through one WAP stretch each other's airtime.

//! ## Example: the Fig. 7 failure mode in four lines
//!
//! ```
//! use lgv_net::channel::{SendOutcome, UdpChannel};
//! use lgv_net::signal::{SignalModel, WirelessConfig};
//! use lgv_types::prelude::*;
//! use bytes::Bytes;
//!
//! let radio = WirelessConfig::default().with_weak_radius(15.0);
//! let signal = SignalModel::new(radio, Point2::new(0.0, 0.0));
//! let mut ch = UdpChannel::new(signal, Duration::ZERO, SimRng::seed_from_u64(1));
//!
//! let far = Point2::new(40.0, 0.0); // deep in the weak zone
//! let first = ch.send(SimTime::EPOCH, far, Bytes::from_static(b"cmd"));
//! let second = ch.send(SimTime::EPOCH, far, Bytes::from_static(b"cmd"));
//! assert_eq!(first, SendOutcome::HeldInKernelBuffer);
//! assert_eq!(second, SendOutcome::DiscardedFullBuffer); // silent!
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod channel;
pub mod fault;
pub mod link;
pub mod measure;
pub mod shared;
pub mod signal;
pub mod tcp;

pub use channel::{Packet, SendOutcome, UdpChannel};
pub use fault::{
    CloudFaultKind, CloudFaultSchedule, CloudFaultWindow, FaultClock, FaultEdge, FaultInjector,
    FaultKind, FaultSchedule, FaultWindow,
};
pub use link::{DuplexLink, LinkConfig, RemoteSite};
pub use measure::{BandwidthMeter, RttTracker, SignalDirectionEstimator};
pub use shared::{MediumStats, SharedMedium};
pub use signal::{SignalModel, WirelessConfig};
pub use tcp::{TcpChannel, TcpStats};
