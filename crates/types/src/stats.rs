//! Small summary-statistics toolkit.
//!
//! The benches and reports repeatedly need means, spreads, percentiles
//! and series downsampling; this module centralizes them (and keeps
//! the figure binaries free of ad-hoc numerics).

/// Running summary of a scalar stream (Welford's online algorithm —
/// numerically stable, single pass, O(1) memory).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Fresh, empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Ingest one sample (non-finite samples are ignored).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Samples ingested.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 with < 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest sample (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Nearest-rank percentile of a slice (`pct` in [0, 100]); `None` when
/// empty. Does not require a pre-sorted input.
pub fn percentile(values: &[f64], pct: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(f64::total_cmp);
    let rank = ((pct.clamp(0.0, 100.0) / 100.0) * v.len() as f64)
        .ceil()
        .max(1.0) as usize
        - 1;
    Some(v[rank.min(v.len() - 1)])
}

/// Downsample a series to at most `max_points` by averaging fixed-size
/// buckets — the figure binaries use it to print long traces compactly.
pub fn downsample(series: &[f64], max_points: usize) -> Vec<f64> {
    assert!(max_points > 0);
    if series.len() <= max_points {
        return series.to_vec();
    }
    let bucket = series.len().div_ceil(max_points);
    series
        .chunks(bucket)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_ignores_non_finite() {
        let mut s = Summary::new();
        s.push(1.0);
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 1.0);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let mut whole = Summary::new();
        data.iter().for_each(|&x| whole.push(x));
        let mut a = Summary::new();
        let mut b = Summary::new();
        data[..37].iter().for_each(|&x| a.push(x));
        data[37..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.std_dev() - whole.std_dev()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.push(3.0);
        let before = a.mean();
        a.merge(&Summary::new());
        assert_eq!(a.mean(), before);
        let mut e = Summary::new();
        e.merge(&a);
        assert_eq!(e.mean(), before);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 30.0), Some(20.0));
        assert_eq!(percentile(&v, 100.0), Some(50.0));
        assert_eq!(percentile(&v, 0.0), Some(15.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn downsample_preserves_short_series() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(downsample(&v, 10), v);
    }

    #[test]
    fn downsample_buckets_average() {
        let v: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let d = downsample(&v, 5);
        assert_eq!(d, vec![0.5, 2.5, 4.5, 6.5, 8.5]);
    }
}
