//! Virtual time.
//!
//! All experiments run on a simulated clock so results are independent
//! of the host machine. [`SimTime`] is an absolute instant, [`Duration`]
//! a signed-free span, both with nanosecond resolution stored in `u64`
//! (≈ 584 years of range — plenty for a vacuum-cleaner mission).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulated time, nanosecond resolution.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// From fractional seconds; negative or non-finite values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Duration::ZERO;
        }
        Duration((s * 1e9).round() as u64)
    }

    /// Nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds (fractional).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_sub(rhs.0).expect("Duration underflow"))
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<f64> for Duration {
    type Output = Duration;
    fn div(self, rhs: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() / rhs)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An absolute instant on the simulated clock.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation epoch.
    pub const EPOCH: SimTime = SimTime(0);

    /// Instant at `ns` nanoseconds past the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Instant at fractional seconds past the epoch.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(Duration::from_secs_f64(s).as_nanos())
    }

    /// Nanoseconds since epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since epoch (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span since an earlier instant (panics if `earlier` is later).
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is later"),
        )
    }

    /// Span since an earlier instant, zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

/// A fixed repetition rate (Hz) with its period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rate {
    hz: f64,
}

impl Rate {
    /// Construct from a frequency in Hz (must be positive and finite).
    pub fn hz(hz: f64) -> Self {
        assert!(hz.is_finite() && hz > 0.0, "rate must be positive");
        Rate { hz }
    }

    /// Frequency in Hz.
    pub fn as_hz(self) -> f64 {
        self.hz
    }

    /// Period between two ticks.
    pub fn period(self) -> Duration {
        Duration::from_secs_f64(1.0 / self.hz)
    }

    /// Number of whole ticks that fit in a span.
    pub fn ticks_in(self, span: Duration) -> u64 {
        (span.as_secs_f64() * self.hz).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(2), Duration::from_millis(2000));
        assert_eq!(Duration::from_millis(3), Duration::from_micros(3000));
        assert_eq!(Duration::from_secs_f64(1.5), Duration::from_millis(1500));
    }

    #[test]
    fn duration_from_negative_or_nan_is_zero() {
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_millis(300);
        let b = Duration::from_millis(200);
        assert_eq!(a + b, Duration::from_millis(500));
        assert_eq!(a - b, Duration::from_millis(100));
        assert_eq!(b.saturating_sub(a), Duration::ZERO);
        assert_eq!(a * 2.0, Duration::from_millis(600));
        assert_eq!(a / 3.0, Duration::from_millis(100));
    }

    #[test]
    fn simtime_ordering_and_span() {
        let t0 = SimTime::EPOCH;
        let t1 = t0 + Duration::from_secs(5);
        assert!(t1 > t0);
        assert_eq!(t1.since(t0), Duration::from_secs(5));
        assert_eq!(t0.saturating_since(t1), Duration::ZERO);
        assert_eq!(t1 - t0, Duration::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn simtime_since_panics_on_reversal() {
        let t0 = SimTime::EPOCH + Duration::from_secs(1);
        let _ = SimTime::EPOCH.since(t0);
    }

    #[test]
    fn rate_period_and_ticks() {
        let r = Rate::hz(5.0);
        assert_eq!(r.period(), Duration::from_millis(200));
        assert_eq!(r.ticks_in(Duration::from_secs(2)), 10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", Duration::from_micros(1500)), "1.500ms");
        assert_eq!(format!("{}", Duration::from_nanos(12)), "12ns");
    }
}
