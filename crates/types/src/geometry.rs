//! Planar geometry: points, vectors, poses, and velocity twists.

use crate::angle::{normalize_angle, Angle};
use serde::{Deserialize, Serialize};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point in the world frame, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

/// A free 2-D vector, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// X component (m).
    pub x: f64,
    /// Y component (m).
    pub y: f64,
}

impl Point2 {
    /// Origin.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point2) -> f64 {
        (self - other).norm()
    }

    /// Squared distance (avoids the square root on hot paths).
    pub fn distance_sq(self, other: Point2) -> f64 {
        let d = self - other;
        d.x * d.x + d.y * d.y
    }

    /// Linear interpolation between two points, `t` in `[0, 1]`.
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        let t = t.clamp(0.0, 1.0);
        Point2::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

impl Vec2 {
    /// Zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Construct a vector.
    pub fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector at a given heading.
    pub fn from_angle(a: Angle) -> Self {
        Vec2::new(a.cos(), a.sin())
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared norm.
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z component of the cross product (signed area).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Heading of the vector.
    pub fn angle(self) -> Angle {
        Angle::from_radians(self.y.atan2(self.x))
    }

    /// The vector scaled to unit length; zero vectors stay zero.
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n < 1e-12 {
            Vec2::ZERO
        } else {
            self / n
        }
    }

    /// Rotate by an angle about the origin.
    pub fn rotated(self, a: Angle) -> Vec2 {
        let (s, c) = (a.sin(), a.cos());
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }
}

impl Sub for Point2 {
    type Output = Vec2;
    fn sub(self, rhs: Point2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    fn add(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vec2> for Point2 {
    type Output = Point2;
    fn sub(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// A planar pose: position plus heading, `SE(2)`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose2D {
    /// X position in the world frame (m).
    pub x: f64,
    /// Y position in the world frame (m).
    pub y: f64,
    /// Heading in radians, normalized to `(-π, π]`.
    pub theta: f64,
}

impl Pose2D {
    /// Construct a pose (heading is normalized).
    pub fn new(x: f64, y: f64, theta: f64) -> Self {
        Pose2D {
            x,
            y,
            theta: normalize_angle(theta),
        }
    }

    /// Position component.
    pub fn position(self) -> Point2 {
        Point2::new(self.x, self.y)
    }

    /// Heading component.
    pub fn heading(self) -> Angle {
        Angle::from_radians(self.theta)
    }

    /// Transform a point expressed in this pose's local frame into the
    /// world frame.
    pub fn transform_from_local(self, local: Point2) -> Point2 {
        let (s, c) = (self.theta.sin(), self.theta.cos());
        Point2::new(
            self.x + local.x * c - local.y * s,
            self.y + local.x * s + local.y * c,
        )
    }

    /// Transform a world-frame point into this pose's local frame.
    pub fn transform_to_local(self, world: Point2) -> Point2 {
        let dx = world.x - self.x;
        let dy = world.y - self.y;
        let (s, c) = (self.theta.sin(), self.theta.cos());
        Point2::new(dx * c + dy * s, -dx * s + dy * c)
    }

    /// Compose with a relative motion expressed in the local frame
    /// (odometry increment): returns `self ⊕ delta`.
    pub fn compose(self, delta: Pose2D) -> Pose2D {
        let p = self.transform_from_local(Point2::new(delta.x, delta.y));
        Pose2D::new(p.x, p.y, self.theta + delta.theta)
    }

    /// Relative motion from `self` to `other`, expressed in `self`'s
    /// local frame: the inverse of [`Pose2D::compose`].
    pub fn between(self, other: Pose2D) -> Pose2D {
        let p = self.transform_to_local(other.position());
        Pose2D::new(p.x, p.y, other.theta - self.theta)
    }

    /// Euclidean distance between the positions of two poses.
    pub fn distance(self, other: Pose2D) -> f64 {
        self.position().distance(other.position())
    }

    /// Integrate a unicycle motion `(v, w)` over `dt` seconds using the
    /// exact arc model (falls back to straight-line when `|w|` is tiny).
    pub fn integrate(self, twist: Twist, dt: f64) -> Pose2D {
        let (v, w) = (twist.linear, twist.angular);
        if w.abs() < 1e-9 {
            Pose2D::new(
                self.x + v * dt * self.theta.cos(),
                self.y + v * dt * self.theta.sin(),
                self.theta,
            )
        } else {
            // Exact integration along a circular arc of radius v/w.
            let r = v / w;
            let th1 = self.theta + w * dt;
            Pose2D::new(
                self.x + r * (th1.sin() - self.theta.sin()),
                self.y - r * (th1.cos() - self.theta.cos()),
                th1,
            )
        }
    }
}

/// A planar velocity command: linear (m/s) + angular (rad/s).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Twist {
    /// Forward linear velocity (m/s).
    pub linear: f64,
    /// Angular velocity (rad/s), positive counter-clockwise.
    pub angular: f64,
}

impl Twist {
    /// Stationary twist.
    pub const STOP: Twist = Twist {
        linear: 0.0,
        angular: 0.0,
    };

    /// Construct a twist.
    pub fn new(linear: f64, angular: f64) -> Self {
        Twist { linear, angular }
    }

    /// True when both components are (numerically) zero.
    pub fn is_stop(self) -> bool {
        self.linear.abs() < 1e-9 && self.angular.abs() < 1e-9
    }

    /// Clamp both components to symmetric limits.
    pub fn clamped(self, max_linear: f64, max_angular: f64) -> Twist {
        Twist::new(
            self.linear.clamp(-max_linear, max_linear),
            self.angular.clamp(-max_angular, max_angular),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn vector_algebra_basics() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.normalized().norm(), 1.0);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        assert_eq!(v.dot(Vec2::new(1.0, 0.0)), 3.0);
        assert_eq!(Vec2::new(1.0, 0.0).cross(Vec2::new(0.0, 1.0)), 1.0);
    }

    #[test]
    fn vector_rotation_quarter_turn() {
        let r = Vec2::new(1.0, 0.0).rotated(Angle::from_radians(FRAC_PI_2));
        assert!((r.x).abs() < 1e-12 && (r.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_lerp_midpoint() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.5), Point2::new(1.0, 2.0));
        assert_eq!(a.lerp(b, -1.0), a);
        assert_eq!(a.lerp(b, 2.0), b);
    }

    #[test]
    fn pose_local_world_roundtrip() {
        let pose = Pose2D::new(2.0, -1.0, 0.7);
        let p = Point2::new(3.5, 0.25);
        let back = pose.transform_to_local(pose.transform_from_local(p));
        assert!(back.distance(p) < 1e-12);
    }

    #[test]
    fn pose_compose_between_inverse() {
        let a = Pose2D::new(1.0, 2.0, 0.3);
        let b = Pose2D::new(-0.5, 4.0, -2.0);
        let d = a.between(b);
        let b2 = a.compose(d);
        assert!(b2.distance(b) < 1e-12);
        assert!(normalize_angle(b2.theta - b.theta).abs() < 1e-12);
    }

    #[test]
    fn integrate_straight_line() {
        let p = Pose2D::new(0.0, 0.0, 0.0);
        let q = p.integrate(Twist::new(1.0, 0.0), 2.0);
        assert!((q.x - 2.0).abs() < 1e-12 && q.y.abs() < 1e-12);
    }

    #[test]
    fn integrate_full_circle_returns_home() {
        // v = r*w: a full revolution in 2π/w seconds comes back home.
        let p = Pose2D::new(1.0, 1.0, 0.5);
        let w = 0.8;
        let q = p.integrate(Twist::new(0.4, w), 2.0 * PI / w);
        assert!(q.distance(p) < 1e-9);
    }

    #[test]
    fn integrate_quarter_arc_geometry() {
        // Unit radius quarter arc from origin heading +x ends at (1, 1).
        let p = Pose2D::new(0.0, 0.0, 0.0);
        let q = p.integrate(Twist::new(1.0, 1.0), FRAC_PI_2);
        assert!((q.x - 1.0).abs() < 1e-9, "{q:?}");
        assert!((q.y - 1.0).abs() < 1e-9, "{q:?}");
        assert!((q.theta - FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn twist_clamp() {
        let t = Twist::new(5.0, -9.0).clamped(0.22, 2.84);
        assert_eq!(t.linear, 0.22);
        assert_eq!(t.angular, -2.84);
        assert!(Twist::STOP.is_stop());
    }
}
