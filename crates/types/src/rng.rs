//! Deterministic random sampling.
//!
//! Every stochastic component in the workspace draws from a [`SimRng`]
//! seeded explicitly, so a whole experiment is reproducible from a
//! single `u64`. Gaussian sampling is implemented here with the polar
//! Box–Muller method because `rand_distr` is outside the allowed
//! dependency set.

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

/// Seeded random number generator used across the workspace.
///
/// Backed by `SmallRng` (xoshiro256++): deterministic for a given seed,
/// cheap to fork, and `Clone` so particle filters can snapshot state.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    /// Cached second output of the polar Box–Muller transform.
    spare_gaussian: Option<f64>,
}

impl SimRng {
    /// Create a generator from an explicit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            spare_gaussian: None,
        }
    }

    /// Derive an independent child generator; used to give each
    /// subsystem (sensor noise, network loss, particle filter, …) its
    /// own stream while keeping one top-level seed.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        // Mix the salt with fresh randomness so forks with different
        // salts are decorrelated even if called in a different order.
        let s = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(s)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        if lo == hi {
            return lo;
        }
        self.inner.random_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.random_range(0..n)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Standard normal sample (mean 0, std-dev 1) via polar Box–Muller.
    pub fn gaussian_std(&mut self) -> f64 {
        if let Some(z) = self.spare_gaussian.take() {
            return z;
        }
        loop {
            let u = self.uniform_range(-1.0, 1.0);
            let v = self.uniform_range(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare_gaussian = Some(v * f);
                return u * f;
            }
        }
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        mean + std_dev * self.gaussian_std()
    }

    /// Sample an index proportionally to non-negative `weights`.
    /// Returns `None` when all weights are zero (or the slice is empty).
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            target -= w;
            if target <= 0.0 {
                return Some(i);
            }
        }
        // Floating point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }

    /// Access the raw generator (for `rand` trait APIs).
    pub fn raw(&mut self) -> &mut SmallRng {
        &mut self.inner
    }
}

/// Low-variance (systematic) resampling: draws `n` indices from the
/// weight distribution using a single random offset, preserving
/// particle diversity better than independent draws. Standard tool in
/// Rao-Blackwellized particle filters (Thrun et al., *Probabilistic
/// Robotics*).
pub fn low_variance_resample(rng: &mut SimRng, weights: &[f64], n: usize) -> Vec<usize> {
    assert!(!weights.is_empty(), "cannot resample from empty weights");
    let total: f64 = weights.iter().copied().sum();
    if total <= 0.0 || !total.is_finite() {
        // Degenerate weights: keep a uniform spread of the originals.
        return (0..n).map(|i| i % weights.len()).collect();
    }
    let step = total / n as f64;
    let mut r = rng.uniform() * step;
    let mut out = Vec::with_capacity(n);
    let mut cum = weights[0];
    let mut i = 0usize;
    for _ in 0..n {
        while r > cum && i + 1 < weights.len() {
            i += 1;
            cum += weights[i];
        }
        out.push(i);
        r += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let mut root = SimRng::seed_from_u64(42);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let matches = (0..64).filter(|_| c1.uniform() == c2.uniform()).count();
        assert!(matches < 4);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(2.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-3.0));
        assert!(rng.chance(5.0));
    }

    #[test]
    fn chance_frequency() {
        let mut rng = SimRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::seed_from_u64(6);
        let w = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&w).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_degenerate() {
        let mut rng = SimRng::seed_from_u64(7);
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn low_variance_resample_counts_match_weights() {
        let mut rng = SimRng::seed_from_u64(8);
        let w = [1.0, 1.0, 2.0];
        let idx = low_variance_resample(&mut rng, &w, 4000);
        assert_eq!(idx.len(), 4000);
        let c2 = idx.iter().filter(|&&i| i == 2).count();
        assert!((c2 as f64 / 4000.0 - 0.5).abs() < 0.02);
        assert!(idx.iter().all(|&i| i < 3));
    }

    #[test]
    fn low_variance_resample_zero_weights_fallback() {
        let mut rng = SimRng::seed_from_u64(9);
        let idx = low_variance_resample(&mut rng, &[0.0, 0.0, 0.0], 6);
        assert_eq!(idx, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn index_in_bounds() {
        let mut rng = SimRng::seed_from_u64(10);
        for _ in 0..1000 {
            assert!(rng.index(7) < 7);
        }
    }
}
