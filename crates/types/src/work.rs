//! Cycle-level work accounting.
//!
//! The paper's analytical model (Eq. 1c) prices a node's energy and
//! processing time by the CPU cycles it demands (`L_{n,t}`). Instead of
//! curve-fitting, every algorithm in this workspace *counts* its own
//! operations (beams traced, particles matched, trajectories scored …)
//! through a [`WorkMeter`] and converts them to cycles with explicit
//! per-operation constants. A [`Work`] record additionally splits the
//! cycles into a serial and a parallelizable part so the platform model
//! can apply Amdahl-style scaling (paper §V, Figures 9–10).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// The cycle demand of one node activation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Work {
    /// Cycles that must execute sequentially (pipeline setup,
    /// resampling, reductions…).
    pub serial_cycles: f64,
    /// Cycles divisible across worker threads.
    pub parallel_cycles: f64,
    /// Number of independent items the parallel part splits into
    /// (particles, trajectories). Bounds usable parallelism: `N`
    /// threads can never help beyond `parallel_items` ways.
    pub parallel_items: u32,
}

impl Work {
    /// No work.
    pub const ZERO: Work = Work {
        serial_cycles: 0.0,
        parallel_cycles: 0.0,
        parallel_items: 0,
    };

    /// Entirely sequential work.
    pub fn serial(cycles: f64) -> Self {
        Work {
            serial_cycles: cycles,
            parallel_cycles: 0.0,
            parallel_items: 0,
        }
    }

    /// Work with a parallel section of `items` independent pieces.
    pub fn with_parallel(serial_cycles: f64, parallel_cycles: f64, items: u32) -> Self {
        Work {
            serial_cycles,
            parallel_cycles,
            parallel_items: items,
        }
    }

    /// Total cycle count.
    pub fn total_cycles(&self) -> f64 {
        self.serial_cycles + self.parallel_cycles
    }

    /// Fraction of the work that can be parallelized (0 when empty).
    pub fn parallel_fraction(&self) -> f64 {
        let t = self.total_cycles();
        if t <= 0.0 {
            0.0
        } else {
            self.parallel_cycles / t
        }
    }

    /// Average parallel cycles per item (0 when there is no parallel part).
    pub fn cycles_per_item(&self) -> f64 {
        if self.parallel_items == 0 {
            0.0
        } else {
            self.parallel_cycles / self.parallel_items as f64
        }
    }
}

impl Add for Work {
    type Output = Work;
    fn add(self, rhs: Work) -> Work {
        Work {
            serial_cycles: self.serial_cycles + rhs.serial_cycles,
            parallel_cycles: self.parallel_cycles + rhs.parallel_cycles,
            parallel_items: self.parallel_items.max(rhs.parallel_items),
        }
    }
}

impl AddAssign for Work {
    fn add_assign(&mut self, rhs: Work) {
        *self = *self + rhs;
    }
}

/// Incremental accumulator used inside algorithms to tally operations
/// as they happen, then convert to a [`Work`] record.
#[derive(Debug, Clone, Default)]
pub struct WorkMeter {
    serial: f64,
    parallel: f64,
    items: u32,
}

impl WorkMeter {
    /// Fresh meter.
    pub fn new() -> Self {
        WorkMeter::default()
    }

    /// Record `count` sequential operations costing `cycles_per_op` each.
    pub fn serial_ops(&mut self, count: u64, cycles_per_op: f64) {
        self.serial += count as f64 * cycles_per_op;
    }

    /// Record `count` parallelizable operations costing `cycles_per_op`
    /// each, spread over `items` independent work pieces.
    pub fn parallel_ops(&mut self, count: u64, cycles_per_op: f64, items: u32) {
        self.parallel += count as f64 * cycles_per_op;
        self.items = self.items.max(items);
    }

    /// Snapshot the accumulated work.
    pub fn finish(&self) -> Work {
        Work {
            serial_cycles: self.serial,
            parallel_cycles: self.parallel,
            parallel_items: self.items,
        }
    }

    /// Reset to zero (meters are reused across ticks to avoid churn).
    pub fn reset(&mut self) {
        *self = WorkMeter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_work_properties() {
        assert_eq!(Work::ZERO.total_cycles(), 0.0);
        assert_eq!(Work::ZERO.parallel_fraction(), 0.0);
        assert_eq!(Work::ZERO.cycles_per_item(), 0.0);
    }

    #[test]
    fn parallel_fraction_math() {
        let w = Work::with_parallel(25.0, 75.0, 10);
        assert_eq!(w.total_cycles(), 100.0);
        assert_eq!(w.parallel_fraction(), 0.75);
        assert_eq!(w.cycles_per_item(), 7.5);
    }

    #[test]
    fn addition_merges_parts() {
        let a = Work::with_parallel(10.0, 20.0, 4);
        let b = Work::serial(5.0);
        let c = a + b;
        assert_eq!(c.serial_cycles, 15.0);
        assert_eq!(c.parallel_cycles, 20.0);
        assert_eq!(c.parallel_items, 4);
    }

    #[test]
    fn meter_accumulates_and_resets() {
        let mut m = WorkMeter::new();
        m.serial_ops(100, 2.0);
        m.parallel_ops(360, 5.0, 30);
        m.parallel_ops(40, 1.0, 8);
        let w = m.finish();
        assert_eq!(w.serial_cycles, 200.0);
        assert_eq!(w.parallel_cycles, 1840.0);
        assert_eq!(w.parallel_items, 30);
        m.reset();
        assert_eq!(m.finish(), Work::ZERO);
    }
}
