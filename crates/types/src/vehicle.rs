//! Fleet tenant identity.
//!
//! The paper evaluates a single Turtlebot3 against a single remote
//! server, but a production deployment multiplexes one cloud across
//! many vehicles (the ROADMAP's north star). [`VehicleId`] is the
//! tenant key that namespaces everything per vehicle once a fleet
//! shares the cloud and the wireless spectrum: message envelopes,
//! trace records, cloud admissions, and uplink airtime accounting.
//!
//! Like `SpanId`/`MsgId` in `lgv-trace`, id `0` is the reserved
//! "no vehicle" sentinel ([`VehicleId::NONE`]) so that single-vehicle
//! runs — which never assign an id — stay byte-identical to the
//! pre-fleet encoder output. Fleet members are numbered from 1.

use serde::{Deserialize, Serialize};

/// Identity of one vehicle (tenant) in a fleet.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct VehicleId(pub u64);

impl VehicleId {
    /// The "no vehicle" sentinel used by single-vehicle runs.
    pub const NONE: VehicleId = VehicleId(0);

    /// True for the sentinel id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The raw id (0 = none).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for VehicleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_is_zero_and_default() {
        assert_eq!(VehicleId::NONE, VehicleId(0));
        assert_eq!(VehicleId::default(), VehicleId::NONE);
        assert!(VehicleId::NONE.is_none());
        assert!(!VehicleId(3).is_none());
    }

    #[test]
    fn displays_with_v_prefix() {
        assert_eq!(VehicleId(7).to_string(), "v7");
        assert_eq!(VehicleId::NONE.to_string(), "v0");
    }

    #[test]
    fn orders_by_raw_id() {
        assert!(VehicleId(1) < VehicleId(2));
        assert_eq!(VehicleId(9).raw(), 9);
    }
}
