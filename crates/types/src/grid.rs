//! Occupancy-grid indexing and ray traversal.
//!
//! Grids are row-major with cell `(0, 0)` at the world-frame origin
//! corner. `GridDims` carries the resolution (metres per cell) and the
//! world-frame origin so world↔grid conversion lives in one place.

use crate::geometry::Point2;
use serde::{Deserialize, Serialize};

/// Integer cell coordinate in a grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridIndex {
    /// Column (x direction).
    pub col: i32,
    /// Row (y direction).
    pub row: i32,
}

impl GridIndex {
    /// Construct a cell index.
    pub fn new(col: i32, row: i32) -> Self {
        GridIndex { col, row }
    }

    /// Chebyshev (8-connected) distance to another cell.
    pub fn chebyshev(self, other: GridIndex) -> i32 {
        (self.col - other.col)
            .abs()
            .max((self.row - other.row).abs())
    }

    /// Manhattan (4-connected) distance to another cell.
    pub fn manhattan(self, other: GridIndex) -> i32 {
        (self.col - other.col).abs() + (self.row - other.row).abs()
    }

    /// The 4-connected neighbours (no bounds check).
    pub fn neighbors4(self) -> [GridIndex; 4] {
        [
            GridIndex::new(self.col + 1, self.row),
            GridIndex::new(self.col - 1, self.row),
            GridIndex::new(self.col, self.row + 1),
            GridIndex::new(self.col, self.row - 1),
        ]
    }

    /// The 8-connected neighbours (no bounds check).
    pub fn neighbors8(self) -> [GridIndex; 8] {
        [
            GridIndex::new(self.col + 1, self.row),
            GridIndex::new(self.col - 1, self.row),
            GridIndex::new(self.col, self.row + 1),
            GridIndex::new(self.col, self.row - 1),
            GridIndex::new(self.col + 1, self.row + 1),
            GridIndex::new(self.col + 1, self.row - 1),
            GridIndex::new(self.col - 1, self.row + 1),
            GridIndex::new(self.col - 1, self.row - 1),
        ]
    }
}

/// Grid geometry: size, resolution, and world-frame origin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridDims {
    /// Number of columns.
    pub width: u32,
    /// Number of rows.
    pub height: u32,
    /// Metres per cell.
    pub resolution: f64,
    /// World coordinates of the lower-left corner of cell (0, 0).
    pub origin: Point2,
}

impl GridDims {
    /// Construct grid geometry.
    pub fn new(width: u32, height: u32, resolution: f64, origin: Point2) -> Self {
        assert!(resolution > 0.0, "resolution must be positive");
        GridDims {
            width,
            height,
            resolution,
            origin,
        }
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// True when the grid has zero cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// World extent in metres (width, height).
    pub fn world_size(&self) -> (f64, f64) {
        (
            self.width as f64 * self.resolution,
            self.height as f64 * self.resolution,
        )
    }

    /// Does this cell lie inside the grid?
    pub fn contains(&self, idx: GridIndex) -> bool {
        idx.col >= 0
            && idx.row >= 0
            && (idx.col as u32) < self.width
            && (idx.row as u32) < self.height
    }

    /// Row-major flat index for a contained cell.
    pub fn flat(&self, idx: GridIndex) -> usize {
        debug_assert!(self.contains(idx));
        idx.row as usize * self.width as usize + idx.col as usize
    }

    /// Inverse of [`GridDims::flat`].
    pub fn unflat(&self, flat: usize) -> GridIndex {
        GridIndex::new(
            (flat % self.width as usize) as i32,
            (flat / self.width as usize) as i32,
        )
    }

    /// World point → containing cell (may be outside the grid).
    pub fn world_to_grid(&self, p: Point2) -> GridIndex {
        GridIndex::new(
            ((p.x - self.origin.x) / self.resolution).floor() as i32,
            ((p.y - self.origin.y) / self.resolution).floor() as i32,
        )
    }

    /// Centre of a cell in world coordinates.
    pub fn grid_to_world(&self, idx: GridIndex) -> Point2 {
        Point2::new(
            self.origin.x + (idx.col as f64 + 0.5) * self.resolution,
            self.origin.y + (idx.row as f64 + 0.5) * self.resolution,
        )
    }

    /// Clamp a cell index to the nearest in-bounds cell.
    pub fn clamp(&self, idx: GridIndex) -> GridIndex {
        GridIndex::new(
            idx.col.clamp(0, self.width.saturating_sub(1) as i32),
            idx.row.clamp(0, self.height.saturating_sub(1) as i32),
        )
    }
}

/// Amanatides–Woo style voxel traversal: iterates every cell a segment
/// passes through, in order, starting at the cell containing `from`.
///
/// Used by the laser ray-caster and by occupancy-map updates, so it
/// must visit a contiguous 4-connected-ish chain with no gaps.
#[derive(Debug, Clone)]
pub struct GridRay {
    cur: GridIndex,
    end: GridIndex,
    step_x: i32,
    step_y: i32,
    t_max_x: f64,
    t_max_y: f64,
    t_delta_x: f64,
    t_delta_y: f64,
    done: bool,
    /// Safety bound on the number of produced cells.
    remaining: u32,
}

impl GridRay {
    /// Build a traversal from `from` to `to` (world coordinates) on a
    /// grid with the given geometry.
    pub fn new(dims: &GridDims, from: Point2, to: Point2) -> Self {
        let start = dims.world_to_grid(from);
        let end = dims.world_to_grid(to);
        let dir = to - from;
        let res = dims.resolution;

        let step_x = if dir.x > 0.0 { 1 } else { -1 };
        let step_y = if dir.y > 0.0 { 1 } else { -1 };

        // Parametric distance (in t where p = from + t*dir, t ∈ [0,1])
        // to the first vertical / horizontal cell border.
        let fx = (from.x - dims.origin.x) / res - start.col as f64; // in [0,1)
        let fy = (from.y - dims.origin.y) / res - start.row as f64;

        let t_max_x = if dir.x.abs() < 1e-12 {
            f64::INFINITY
        } else if dir.x > 0.0 {
            (1.0 - fx) * res / dir.x.abs()
        } else {
            fx * res / dir.x.abs()
        };
        let t_max_y = if dir.y.abs() < 1e-12 {
            f64::INFINITY
        } else if dir.y > 0.0 {
            (1.0 - fy) * res / dir.y.abs()
        } else {
            fy * res / dir.y.abs()
        };
        let t_delta_x = if dir.x.abs() < 1e-12 {
            f64::INFINITY
        } else {
            res / dir.x.abs()
        };
        let t_delta_y = if dir.y.abs() < 1e-12 {
            f64::INFINITY
        } else {
            res / dir.y.abs()
        };

        let max_cells = (start.chebyshev(end) as u32 + 1) * 2 + 4;
        GridRay {
            cur: start,
            end,
            step_x,
            step_y,
            t_max_x,
            t_max_y,
            t_delta_x,
            t_delta_y,
            done: false,
            remaining: max_cells,
        }
    }
}

impl Iterator for GridRay {
    type Item = GridIndex;

    fn next(&mut self) -> Option<GridIndex> {
        if self.done || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let out = self.cur;
        if out == self.end {
            self.done = true;
            return Some(out);
        }
        if self.t_max_x < self.t_max_y {
            self.t_max_x += self.t_delta_x;
            self.cur.col += self.step_x;
        } else {
            self.t_max_y += self.t_delta_y;
            self.cur.row += self.step_y;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> GridDims {
        GridDims::new(100, 80, 0.1, Point2::new(-1.0, -1.0))
    }

    #[test]
    fn world_grid_roundtrip_center() {
        let d = dims();
        let idx = GridIndex::new(37, 22);
        let p = d.grid_to_world(idx);
        assert_eq!(d.world_to_grid(p), idx);
    }

    #[test]
    fn contains_and_flat() {
        let d = dims();
        assert!(d.contains(GridIndex::new(0, 0)));
        assert!(d.contains(GridIndex::new(99, 79)));
        assert!(!d.contains(GridIndex::new(100, 0)));
        assert!(!d.contains(GridIndex::new(0, -1)));
        let idx = GridIndex::new(5, 3);
        assert_eq!(d.unflat(d.flat(idx)), idx);
    }

    #[test]
    fn clamp_out_of_bounds() {
        let d = dims();
        assert_eq!(d.clamp(GridIndex::new(-5, 200)), GridIndex::new(0, 79));
    }

    #[test]
    fn ray_straight_horizontal() {
        let d = dims();
        let cells: Vec<_> =
            GridRay::new(&d, Point2::new(0.05, 0.05), Point2::new(0.55, 0.05)).collect();
        // Starts at cell (10,10), 0.5 m → 5 extra cells in +x.
        assert_eq!(cells.first().copied(), Some(GridIndex::new(10, 10)));
        assert_eq!(cells.last().copied(), Some(GridIndex::new(15, 10)));
        assert_eq!(cells.len(), 6);
        for w in cells.windows(2) {
            assert_eq!(w[1].row, w[0].row);
            assert_eq!(w[1].col, w[0].col + 1);
        }
    }

    #[test]
    fn ray_diagonal_is_connected() {
        let d = dims();
        let cells: Vec<_> =
            GridRay::new(&d, Point2::new(0.0, 0.0), Point2::new(1.0, 0.7)).collect();
        assert!(!cells.is_empty());
        for w in cells.windows(2) {
            // Amanatides–Woo steps one axis at a time: 4-connected chain.
            assert_eq!(
                w[0].manhattan(w[1]),
                1,
                "gap between {:?} and {:?}",
                w[0],
                w[1]
            );
        }
        assert_eq!(
            cells.last().copied(),
            Some(d.world_to_grid(Point2::new(1.0, 0.7)))
        );
    }

    #[test]
    fn ray_degenerate_same_cell() {
        let d = dims();
        let cells: Vec<_> =
            GridRay::new(&d, Point2::new(0.31, 0.31), Point2::new(0.33, 0.32)).collect();
        assert_eq!(cells.len(), 1);
    }

    #[test]
    fn ray_negative_direction() {
        let d = dims();
        let cells: Vec<_> =
            GridRay::new(&d, Point2::new(0.55, 0.05), Point2::new(0.05, 0.05)).collect();
        assert_eq!(cells.first().copied(), Some(GridIndex::new(15, 10)));
        assert_eq!(cells.last().copied(), Some(GridIndex::new(10, 10)));
    }

    #[test]
    fn neighbor_distances() {
        let c = GridIndex::new(4, 4);
        for n in c.neighbors4() {
            assert_eq!(c.manhattan(n), 1);
        }
        for n in c.neighbors8() {
            assert_eq!(c.chebyshev(n), 1);
        }
    }
}
