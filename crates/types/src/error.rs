//! Workspace-wide error type.

use std::fmt;

/// Errors surfaced by the cloud-lgv stack.
#[derive(Debug, Clone, PartialEq)]
pub enum LgvError {
    /// A planner could not find a path between two points.
    NoPath {
        /// Human-readable context (start/goal description).
        context: String,
    },
    /// A requested pose or cell lies outside the map.
    OutOfBounds {
        /// Human-readable context.
        context: String,
    },
    /// A network channel is closed or the peer is unreachable.
    Disconnected {
        /// Which link failed.
        link: String,
    },
    /// Message (de)serialization failed.
    Codec {
        /// Decoder/encoder detail.
        detail: String,
    },
    /// A configuration value is invalid.
    InvalidConfig {
        /// Which parameter and why.
        detail: String,
    },
    /// A mission aborted (stuck, battery empty, …).
    MissionFailed {
        /// Why the mission could not complete.
        reason: String,
    },
}

impl fmt::Display for LgvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LgvError::NoPath { context } => write!(f, "no path found: {context}"),
            LgvError::OutOfBounds { context } => write!(f, "out of bounds: {context}"),
            LgvError::Disconnected { link } => write!(f, "link disconnected: {link}"),
            LgvError::Codec { detail } => write!(f, "codec error: {detail}"),
            LgvError::InvalidConfig { detail } => write!(f, "invalid config: {detail}"),
            LgvError::MissionFailed { reason } => write!(f, "mission failed: {reason}"),
        }
    }
}

impl std::error::Error for LgvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = LgvError::NoPath {
            context: "A->B".into(),
        };
        assert_eq!(e.to_string(), "no path found: A->B");
        let e = LgvError::Disconnected {
            link: "wifi".into(),
        };
        assert!(e.to_string().contains("wifi"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LgvError::Codec {
            detail: "truncated".into(),
        });
    }
}
