//! The functional-node vocabulary of the standard LGV pipeline
//! (paper Fig. 2) and where each node runs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The processing stage a node belongs to (paper §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Sensor data → estimated state (localization, costmap).
    Perception,
    /// Long-range decisions (path planning, exploration).
    Planning,
    /// Motion command generation (path tracking, velocity mux).
    Control,
}

/// The functional computation nodes of the standard pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeKind {
    /// Laser-based localization on a known map (AMCL).
    Localization,
    /// Simultaneous localization and mapping (GMapping-style RBPF).
    Slam,
    /// Costmap generation: static + obstacle + inflation layers.
    CostmapGen,
    /// Global path planning (A* / Dijkstra).
    PathPlanning,
    /// Frontier-based exploration goal selection.
    Exploration,
    /// Local planner / trajectory rollout (DWA) producing velocities.
    PathTracking,
    /// Priority-based selection among velocity sources.
    VelocityMux,
}

impl NodeKind {
    /// All node kinds, pipeline order.
    pub const ALL: [NodeKind; 7] = [
        NodeKind::Localization,
        NodeKind::Slam,
        NodeKind::CostmapGen,
        NodeKind::PathPlanning,
        NodeKind::Exploration,
        NodeKind::PathTracking,
        NodeKind::VelocityMux,
    ];

    /// The pipeline stage of this node.
    pub fn stage(self) -> Stage {
        match self {
            NodeKind::Localization | NodeKind::Slam | NodeKind::CostmapGen => Stage::Perception,
            NodeKind::PathPlanning | NodeKind::Exploration => Stage::Planning,
            NodeKind::PathTracking | NodeKind::VelocityMux => Stage::Control,
        }
    }

    /// Whether the node lies on the velocity-dependent path (VDP):
    /// CostmapGen → PathTracking → VelocityMux (paper §IV-A). The
    /// total processing time of this chain bounds the maximum safe
    /// velocity via Eq. 2c.
    pub fn on_vdp(self) -> bool {
        matches!(
            self,
            NodeKind::CostmapGen | NodeKind::PathTracking | NodeKind::VelocityMux
        )
    }

    /// Stable short name (used in reports and topic names).
    pub fn short_name(self) -> &'static str {
        match self {
            NodeKind::Localization => "localization",
            NodeKind::Slam => "slam",
            NodeKind::CostmapGen => "costmap_gen",
            NodeKind::PathPlanning => "path_planning",
            NodeKind::Exploration => "exploration",
            NodeKind::PathTracking => "path_tracking",
            NodeKind::VelocityMux => "velocity_mux",
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Where a node currently executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Placement {
    /// On the LGV's embedded computer.
    #[default]
    Local,
    /// On the remote server (edge gateway or cloud).
    Remote,
}

impl Placement {
    /// True when the node runs on the vehicle.
    pub fn is_local(self) -> bool {
        matches!(self, Placement::Local)
    }
}

/// A small set of node kinds (bitset over the 7 pipeline nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeSet(u8);

impl NodeSet {
    /// Empty set.
    pub const EMPTY: NodeSet = NodeSet(0);

    fn bit(kind: NodeKind) -> u8 {
        1 << (kind as u8)
    }

    /// Set with a single member.
    pub fn single(kind: NodeKind) -> Self {
        NodeSet(Self::bit(kind))
    }

    /// Build from an iterator of kinds (also available through the
    /// standard `FromIterator`/`collect`).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = NodeKind>>(iter: I) -> Self {
        let mut s = NodeSet::EMPTY;
        for k in iter {
            s.insert(k);
        }
        s
    }

    /// Insert a member.
    pub fn insert(&mut self, kind: NodeKind) {
        self.0 |= Self::bit(kind);
    }

    /// Remove a member.
    pub fn remove(&mut self, kind: NodeKind) {
        self.0 &= !Self::bit(kind);
    }

    /// Membership test.
    pub fn contains(&self, kind: NodeKind) -> bool {
        self.0 & Self::bit(kind) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Union of two sets.
    pub fn union(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 | other.0)
    }

    /// Intersection of two sets.
    pub fn intersection(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & other.0)
    }

    /// Members of `self` not in `other`.
    pub fn difference(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & !other.0)
    }

    /// Iterate the members in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = NodeKind> + '_ {
        NodeKind::ALL.into_iter().filter(|k| self.contains(*k))
    }
}

impl FromIterator<NodeKind> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeKind>>(iter: I) -> Self {
        NodeSet::from_iter(iter)
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, k) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_match_paper_pipeline() {
        assert_eq!(NodeKind::Localization.stage(), Stage::Perception);
        assert_eq!(NodeKind::Slam.stage(), Stage::Perception);
        assert_eq!(NodeKind::CostmapGen.stage(), Stage::Perception);
        assert_eq!(NodeKind::PathPlanning.stage(), Stage::Planning);
        assert_eq!(NodeKind::Exploration.stage(), Stage::Planning);
        assert_eq!(NodeKind::PathTracking.stage(), Stage::Control);
        assert_eq!(NodeKind::VelocityMux.stage(), Stage::Control);
    }

    #[test]
    fn vdp_membership_matches_paper() {
        let vdp: Vec<_> = NodeKind::ALL.into_iter().filter(|k| k.on_vdp()).collect();
        assert_eq!(
            vdp,
            vec![
                NodeKind::CostmapGen,
                NodeKind::PathTracking,
                NodeKind::VelocityMux
            ]
        );
    }

    #[test]
    fn nodeset_basic_ops() {
        let mut s = NodeSet::EMPTY;
        assert!(s.is_empty());
        s.insert(NodeKind::Slam);
        s.insert(NodeKind::PathTracking);
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeKind::Slam));
        assert!(!s.contains(NodeKind::CostmapGen));
        s.remove(NodeKind::Slam);
        assert!(!s.contains(NodeKind::Slam));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn nodeset_algebra() {
        let a = NodeSet::from_iter([NodeKind::Slam, NodeKind::CostmapGen]);
        let b = NodeSet::from_iter([NodeKind::CostmapGen, NodeKind::PathTracking]);
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b), NodeSet::single(NodeKind::CostmapGen));
        assert_eq!(a.difference(b), NodeSet::single(NodeKind::Slam));
    }

    #[test]
    fn nodeset_iter_order_is_pipeline_order() {
        let s = NodeSet::from_iter([NodeKind::VelocityMux, NodeKind::Localization]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![NodeKind::Localization, NodeKind::VelocityMux]);
    }

    #[test]
    fn display_names() {
        assert_eq!(NodeKind::CostmapGen.to_string(), "costmap_gen");
        let s = NodeSet::from_iter([NodeKind::Slam]);
        assert_eq!(s.to_string(), "{slam}");
    }
}
