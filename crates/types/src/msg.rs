//! Message vocabulary exchanged between pipeline nodes.
//!
//! These mirror the ROS message types used by the paper's stack
//! (`sensor_msgs/LaserScan`, `nav_msgs/Odometry`, `geometry_msgs/Twist`,
//! `nav_msgs/OccupancyGrid`, `nav_msgs/Path`). All are `serde`-
//! serializable so the switcher can ship them across the simulated
//! network, and all carry the producing timestamp for the profiler.

use crate::geometry::{Point2, Pose2D, Twist};
use crate::grid::GridDims;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A full 360° laser sweep (LDS-01-style).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaserScan {
    /// Production time.
    pub stamp: SimTime,
    /// Angle of the first beam, radians in the robot frame.
    pub angle_min: f64,
    /// Angular increment between consecutive beams, radians.
    pub angle_increment: f64,
    /// Maximum sensing range in metres; `ranges[i] >= range_max`
    /// encodes "no return".
    pub range_max: f64,
    /// One range per beam, metres.
    pub ranges: Vec<f64>,
}

impl LaserScan {
    /// Beam count.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when the scan has no beams.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Angle of beam `i` in the robot frame.
    pub fn beam_angle(&self, i: usize) -> f64 {
        self.angle_min + i as f64 * self.angle_increment
    }

    /// Whether beam `i` hit something (range strictly below max).
    pub fn is_hit(&self, i: usize) -> bool {
        self.ranges[i] < self.range_max
    }

    /// Endpoint of beam `i` in the world frame given the sensor pose.
    pub fn beam_endpoint(&self, pose: Pose2D, i: usize) -> Point2 {
        let a = pose.theta + self.beam_angle(i);
        let r = self.ranges[i].min(self.range_max);
        Point2::new(pose.x + r * a.cos(), pose.y + r * a.sin())
    }

    /// Approximate wire size in bytes (used for transmission-energy
    /// accounting; a real LDS-01 scan is ≈ 2.94 KB, paper §VIII-D).
    pub fn wire_size(&self) -> usize {
        8 * 4 + 8 * self.ranges.len()
    }
}

/// Odometry estimate from wheel encoders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OdometryMsg {
    /// Production time.
    pub stamp: SimTime,
    /// Dead-reckoned pose (drifts over time).
    pub pose: Pose2D,
    /// Body-frame velocity at the stamp.
    pub twist: Twist,
}

/// Pose estimate from a localization node (AMCL or SLAM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoseEstimate {
    /// Production time.
    pub stamp: SimTime,
    /// Estimated pose in the map frame.
    pub pose: Pose2D,
    /// Scalar confidence in `[0, 1]` (1 = fully converged).
    pub confidence: f64,
}

/// Origin of a velocity command, ordered by priority for the
/// multiplexer (higher = more urgent, paper Fig. 2 node 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VelocitySource {
    /// Autonomous navigation (lowest priority).
    Navigation,
    /// Human joystick override.
    Joystick,
    /// Safety controller (highest priority).
    SafetyController,
}

/// A velocity command with provenance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VelocityCmd {
    /// Production time.
    pub stamp: SimTime,
    /// The command.
    pub twist: Twist,
    /// Which subsystem produced it.
    pub source: VelocitySource,
}

impl VelocityCmd {
    /// Wire size of a velocity command. The paper quotes 48 B
    /// (§III-A), the size of a ROS `geometry_msgs/Twist`.
    pub const WIRE_SIZE: usize = 48;
}

/// Occupancy-grid map snapshot (SLAM output / static map).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapMsg {
    /// Production time.
    pub stamp: SimTime,
    /// Grid geometry.
    pub dims: GridDims,
    /// Row-major occupancy: -1 unknown, 0 free, 100 occupied
    /// (ROS `nav_msgs/OccupancyGrid` convention).
    pub cells: Vec<i8>,
}

impl MapMsg {
    /// Occupancy value constants.
    pub const UNKNOWN: i8 = -1;
    /// Free-space cell value.
    pub const FREE: i8 = 0;
    /// Occupied cell value.
    pub const OCCUPIED: i8 = 100;

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        8 * 5 + self.cells.len()
    }

    /// Fraction of cells that are known (free or occupied).
    pub fn known_fraction(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        let known = self.cells.iter().filter(|&&c| c != Self::UNKNOWN).count();
        known as f64 / self.cells.len() as f64
    }
}

/// A planned path through the world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathMsg {
    /// Production time.
    pub stamp: SimTime,
    /// Waypoints from start to goal, world frame.
    pub waypoints: Vec<Point2>,
}

impl PathMsg {
    /// Total arc length of the path in metres.
    pub fn length(&self) -> f64 {
        self.waypoints.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        8 + 16 * self.waypoints.len()
    }
}

/// A navigation goal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoalMsg {
    /// Production time.
    pub stamp: SimTime,
    /// Target position in the map frame.
    pub target: Point2,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn scan() -> LaserScan {
        LaserScan {
            stamp: SimTime::EPOCH,
            angle_min: 0.0,
            angle_increment: 2.0 * PI / 360.0,
            range_max: 3.5,
            ranges: vec![1.0; 360],
        }
    }

    #[test]
    fn beam_angles_span_circle() {
        let s = scan();
        assert_eq!(s.len(), 360);
        assert!((s.beam_angle(359) - (2.0 * PI - s.angle_increment)).abs() < 1e-9);
    }

    #[test]
    fn beam_endpoint_geometry() {
        let s = scan();
        let pose = Pose2D::new(1.0, 2.0, PI / 2.0);
        // Beam 0 points along the robot's heading (+y here).
        let p = s.beam_endpoint(pose, 0);
        assert!((p.x - 1.0).abs() < 1e-9);
        assert!((p.y - 3.0).abs() < 1e-9);
    }

    #[test]
    fn hit_detection_threshold() {
        let mut s = scan();
        s.ranges[5] = 3.5;
        assert!(!s.is_hit(5));
        assert!(s.is_hit(6));
    }

    #[test]
    fn scan_wire_size_close_to_lds01() {
        // 360 beams × 8 B ≈ 2.9 KB — matches the paper's 2.94 KB claim.
        let s = scan();
        assert!(s.wire_size() > 2_800 && s.wire_size() < 3_100);
    }

    #[test]
    fn map_known_fraction() {
        let dims = GridDims::new(2, 2, 1.0, Point2::ORIGIN);
        let m = MapMsg {
            stamp: SimTime::EPOCH,
            dims,
            cells: vec![
                MapMsg::UNKNOWN,
                MapMsg::FREE,
                MapMsg::OCCUPIED,
                MapMsg::UNKNOWN,
            ],
        };
        assert_eq!(m.known_fraction(), 0.5);
    }

    #[test]
    fn path_length_sums_segments() {
        let p = PathMsg {
            stamp: SimTime::EPOCH,
            waypoints: vec![
                Point2::new(0.0, 0.0),
                Point2::new(3.0, 0.0),
                Point2::new(3.0, 4.0),
            ],
        };
        assert_eq!(p.length(), 7.0);
        assert_eq!(
            PathMsg {
                stamp: SimTime::EPOCH,
                waypoints: vec![]
            }
            .length(),
            0.0
        );
    }

    #[test]
    fn velocity_source_priority_ordering() {
        assert!(VelocitySource::SafetyController > VelocitySource::Joystick);
        assert!(VelocitySource::Joystick > VelocitySource::Navigation);
    }
}
