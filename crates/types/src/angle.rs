//! Angle arithmetic on the unit circle.
//!
//! All angles in the workspace are radians in `(-π, π]` unless stated
//! otherwise. [`Angle`] is a thin newtype that keeps its value
//! normalized, so subtraction always yields the shortest signed
//! rotation — the property every controller and scan matcher relies on.

use serde::{Deserialize, Serialize};
use std::f64::consts::PI;
use std::ops::{Add, Neg, Sub};

/// Normalize an angle in radians into the half-open interval `(-π, π]`.
///
/// ```
/// use lgv_types::angle::normalize_angle;
/// use std::f64::consts::PI;
/// assert!((normalize_angle(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((normalize_angle(-3.0 * PI) - PI).abs() < 1e-12);
/// assert_eq!(normalize_angle(0.25), 0.25);
/// ```
pub fn normalize_angle(a: f64) -> f64 {
    if a.is_nan() || a.is_infinite() {
        return 0.0;
    }
    // rem_euclid keeps the result in [0, 2π); shift into (-π, π].
    let r = (a + PI).rem_euclid(2.0 * PI);
    let out = r - PI;
    if out <= -PI {
        out + 2.0 * PI
    } else {
        out
    }
}

/// A normalized planar angle in radians, always in `(-π, π]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Angle(f64);

impl Angle {
    /// Zero rotation.
    pub const ZERO: Angle = Angle(0.0);

    /// Build from radians; the value is normalized on construction.
    pub fn from_radians(r: f64) -> Self {
        Angle(normalize_angle(r))
    }

    /// Build from degrees.
    pub fn from_degrees(d: f64) -> Self {
        Angle::from_radians(d.to_radians())
    }

    /// The normalized radian value.
    pub fn radians(self) -> f64 {
        self.0
    }

    /// The value in degrees.
    pub fn degrees(self) -> f64 {
        self.0.to_degrees()
    }

    /// Cosine of the angle.
    pub fn cos(self) -> f64 {
        self.0.cos()
    }

    /// Sine of the angle.
    pub fn sin(self) -> f64 {
        self.0.sin()
    }

    /// Shortest absolute angular distance to `other`, in `[0, π]`.
    pub fn distance(self, other: Angle) -> f64 {
        (self - other).radians().abs()
    }

    /// Linear interpolation along the shortest arc. `t` in `[0, 1]`.
    pub fn slerp(self, other: Angle, t: f64) -> Angle {
        let d = (other - self).radians();
        Angle::from_radians(self.0 + d * t.clamp(0.0, 1.0))
    }
}

impl Add for Angle {
    type Output = Angle;
    fn add(self, rhs: Angle) -> Angle {
        Angle::from_radians(self.0 + rhs.0)
    }
}

impl Sub for Angle {
    type Output = Angle;
    fn sub(self, rhs: Angle) -> Angle {
        Angle::from_radians(self.0 - rhs.0)
    }
}

impl Neg for Angle {
    type Output = Angle;
    fn neg(self) -> Angle {
        Angle::from_radians(-self.0)
    }
}

impl From<f64> for Angle {
    fn from(r: f64) -> Self {
        Angle::from_radians(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_identity_in_range() {
        for a in [-3.0, -1.5, 0.0, 0.5, 3.0_f64] {
            let n = normalize_angle(a);
            assert!(n > -PI && n <= PI, "{n} out of range");
        }
    }

    #[test]
    fn normalize_wraps_multiples() {
        assert!((normalize_angle(2.0 * PI)).abs() < 1e-12);
        assert!((normalize_angle(-2.0 * PI)).abs() < 1e-12);
        assert!((normalize_angle(5.0 * PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn normalize_boundary_is_positive_pi() {
        // -π must map to +π (half-open interval convention).
        assert!((normalize_angle(-PI) - PI).abs() < 1e-12);
        assert!((normalize_angle(PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn normalize_handles_non_finite() {
        assert_eq!(normalize_angle(f64::NAN), 0.0);
        assert_eq!(normalize_angle(f64::INFINITY), 0.0);
    }

    #[test]
    fn subtraction_gives_shortest_rotation() {
        let a = Angle::from_degrees(170.0);
        let b = Angle::from_degrees(-170.0);
        // Going from b to a the short way is -20°, not +340°.
        let d = a - b;
        assert!((d.degrees() - (-20.0)).abs() < 1e-9, "{}", d.degrees());
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let a = Angle::from_degrees(10.0);
        let b = Angle::from_degrees(-175.0);
        assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
        assert!(a.distance(b) <= PI + 1e-12);
    }

    #[test]
    fn slerp_endpoints_and_midpoint() {
        let a = Angle::from_degrees(170.0);
        let b = Angle::from_degrees(-170.0);
        assert!((a.slerp(b, 0.0).degrees() - 170.0).abs() < 1e-9);
        assert!((a.slerp(b, 1.0).degrees() - (-170.0)).abs() < 1e-9);
        // Midpoint across the wrap is ±180°.
        let mid = a.slerp(b, 0.5).degrees().abs();
        assert!((mid - 180.0).abs() < 1e-9);
    }

    #[test]
    fn degrees_roundtrip() {
        let a = Angle::from_degrees(42.5);
        assert!((a.degrees() - 42.5).abs() < 1e-9);
    }
}
