//! # lgv-types
//!
//! Foundation types shared by every crate in the `cloud-lgv` workspace:
//! planar geometry, angle arithmetic, occupancy-grid indexing, virtual
//! (simulated) time, deterministic random sampling, cycle-level work
//! accounting, and the message vocabulary exchanged between robotic
//! computation nodes.
//!
//! Everything in this crate is deterministic and allocation-conscious;
//! the heavier simulation substrates build on top of it.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod angle;
pub mod error;
pub mod geometry;
pub mod grid;
pub mod msg;
pub mod node;
pub mod rng;
pub mod stats;
pub mod time;
pub mod vehicle;
pub mod work;

pub use angle::{normalize_angle, Angle};
pub use error::LgvError;
pub use geometry::{Point2, Pose2D, Twist, Vec2};
pub use grid::{GridDims, GridIndex, GridRay};
pub use msg::{
    GoalMsg, LaserScan, MapMsg, OdometryMsg, PathMsg, PoseEstimate, VelocityCmd, VelocitySource,
};
pub use node::{NodeKind, NodeSet, Placement, Stage};
pub use rng::SimRng;
pub use stats::Summary;
pub use time::{Duration, Rate, SimTime};
pub use vehicle::VehicleId;
pub use work::{Work, WorkMeter};

/// Convenience prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use crate::angle::{normalize_angle, Angle};
    pub use crate::error::LgvError;
    pub use crate::geometry::{Point2, Pose2D, Twist, Vec2};
    pub use crate::grid::{GridDims, GridIndex, GridRay};
    pub use crate::msg::*;
    pub use crate::node::{NodeKind, NodeSet, Placement, Stage};
    pub use crate::rng::SimRng;
    pub use crate::stats::Summary;
    pub use crate::time::{Duration, Rate, SimTime};
    pub use crate::vehicle::VehicleId;
    pub use crate::work::{Work, WorkMeter};
}
