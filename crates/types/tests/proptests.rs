//! Property-based tests for the foundation types.

use lgv_types::prelude::*;
use proptest::prelude::*;
use std::f64::consts::PI;

proptest! {
    #[test]
    fn normalize_angle_always_in_range(a in -1e6f64..1e6) {
        let n = normalize_angle(a);
        prop_assert!(n > -PI && n <= PI);
    }

    #[test]
    fn normalize_angle_preserves_direction(a in -1e3f64..1e3) {
        // The normalized angle differs from the input by a multiple of 2π.
        let n = normalize_angle(a);
        let k = (a - n) / (2.0 * PI);
        prop_assert!((k - k.round()).abs() < 1e-6, "k = {k}");
    }

    #[test]
    fn angle_sub_is_shortest(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let d = (Angle::from_radians(a) - Angle::from_radians(b)).radians();
        prop_assert!(d.abs() <= PI + 1e-9);
    }

    #[test]
    fn pose_roundtrip_local_world(
        px in -50.0f64..50.0, py in -50.0f64..50.0, pth in -PI..PI,
        qx in -50.0f64..50.0, qy in -50.0f64..50.0,
    ) {
        let pose = Pose2D::new(px, py, pth);
        let q = Point2::new(qx, qy);
        let rt = pose.transform_to_local(pose.transform_from_local(q));
        prop_assert!(rt.distance(q) < 1e-9);
    }

    #[test]
    fn pose_compose_between_roundtrip(
        ax in -20.0f64..20.0, ay in -20.0f64..20.0, ath in -PI..PI,
        bx in -20.0f64..20.0, by in -20.0f64..20.0, bth in -PI..PI,
    ) {
        let a = Pose2D::new(ax, ay, ath);
        let b = Pose2D::new(bx, by, bth);
        let r = a.compose(a.between(b));
        prop_assert!(r.distance(b) < 1e-9);
        prop_assert!(normalize_angle(r.theta - b.theta).abs() < 1e-9);
    }

    #[test]
    fn integrate_arc_length_matches_speed(
        v in 0.0f64..1.0, w in -2.0f64..2.0, dt in 0.001f64..0.5,
    ) {
        // Over a short step the chord length is ≤ v·dt and close to it.
        let p = Pose2D::new(0.0, 0.0, 0.0);
        let q = p.integrate(Twist::new(v, w), dt);
        let chord = p.distance(q);
        prop_assert!(chord <= v * dt + 1e-9);
        prop_assert!(chord >= v * dt * 0.9 - 1e-9, "chord {chord} vs {}", v * dt);
    }

    #[test]
    fn grid_world_roundtrip(col in 0i32..200, row in 0i32..150) {
        let dims = GridDims::new(200, 150, 0.05, Point2::new(-3.0, -2.0));
        let idx = GridIndex::new(col, row);
        prop_assert_eq!(dims.world_to_grid(dims.grid_to_world(idx)), idx);
    }

    #[test]
    fn grid_flat_roundtrip(col in 0i32..64, row in 0i32..48) {
        let dims = GridDims::new(64, 48, 0.1, Point2::ORIGIN);
        let idx = GridIndex::new(col, row);
        prop_assert_eq!(dims.unflat(dims.flat(idx)), idx);
    }

    #[test]
    fn ray_is_connected_and_terminates(
        x0 in 0.05f64..9.95, y0 in 0.05f64..7.95,
        x1 in 0.05f64..9.95, y1 in 0.05f64..7.95,
    ) {
        let dims = GridDims::new(100, 80, 0.1, Point2::ORIGIN);
        let cells: Vec<_> = GridRay::new(&dims, Point2::new(x0, y0), Point2::new(x1, y1)).collect();
        prop_assert!(!cells.is_empty());
        prop_assert_eq!(cells[0], dims.world_to_grid(Point2::new(x0, y0)));
        prop_assert_eq!(*cells.last().unwrap(), dims.world_to_grid(Point2::new(x1, y1)));
        for w in cells.windows(2) {
            prop_assert_eq!(w[0].manhattan(w[1]), 1);
        }
    }

    #[test]
    fn duration_secs_roundtrip(s in 0.0f64..1e6) {
        let d = Duration::from_secs_f64(s);
        prop_assert!((d.as_secs_f64() - s).abs() < 1e-6);
    }

    #[test]
    fn weighted_index_only_picks_positive(seed in 0u64..1000, n in 1usize..16) {
        let mut rng = SimRng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 0.0 } else { 1.0 }).collect();
        if let Some(i) = rng.weighted_index(&weights) {
            prop_assert!(weights[i] > 0.0);
        } else {
            prop_assert!(weights.iter().all(|&w| w <= 0.0));
        }
    }

    #[test]
    fn low_variance_resample_in_bounds(seed in 0u64..500, n in 1usize..12, k in 1usize..64) {
        let mut rng = SimRng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..n).map(|i| (i as f64) + 0.5).collect();
        let idx = lgv_types::rng::low_variance_resample(&mut rng, &weights, k);
        prop_assert_eq!(idx.len(), k);
        prop_assert!(idx.iter().all(|&i| i < n));
        // Systematic resampling produces sorted index sequences.
        prop_assert!(idx.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn nodeset_roundtrip(bits in 0u8..128) {
        let kinds: Vec<NodeKind> = NodeKind::ALL
            .into_iter()
            .enumerate()
            .filter(|(i, _)| bits & (1 << i) != 0)
            .map(|(_, k)| k)
            .collect();
        let set = NodeSet::from_iter(kinds.iter().copied());
        prop_assert_eq!(set.len(), kinds.len());
        let back: Vec<NodeKind> = set.iter().collect();
        prop_assert_eq!(back, kinds);
    }
}
