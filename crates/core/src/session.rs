//! One vehicle's full runtime stack, packaged for fleet interleaving.
//!
//! [`VehicleSession`] is the single-vehicle mission engine factored
//! out of [`crate::mission`] so that N instances can run **interleaved
//! on one virtual clock**: the fleet driver calls [`VehicleSession::step`]
//! once per vehicle per 200 ms control round, in lockstep, and every
//! shared-resource model (the cloud admission scheduler, the shared
//! wireless medium) reads only *finalized previous-round* state — so
//! results are independent of the order vehicles are stepped within a
//! round.
//!
//! A session that never joins a fleet behaves byte-for-byte like the
//! original single-vehicle runner: [`VehicleSession::join_fleet`]
//! draws no randomness, and both contention models charge exactly zero
//! to a lone tenant.
//!
//! Pipeline semantics are faithful to the paper's system: VDP nodes
//! communicate over one-length queues; an activation whose platform is
//! still busy drops its input (freshness over completeness); a
//! command computed remotely only reaches the actuators if the
//! downlink actually delivers it — so a static offloading policy
//! genuinely stalls in a dead zone, which is what Algorithm 2 fixes.

use crate::classify::{classify, table2_with_map, table2_without_map, Classification};
use crate::controller::{ControlInputs, Controller, ControllerConfig};
use crate::deploy::Deployment;
use crate::governor::{GovernorConfig, ThreadGovernor};
use crate::migration::{MigrationEvent, MigrationManager};
use crate::mission::{MissionConfig, MissionReport, NetSample, VelocitySample, Workload};
use crate::model::TimeBreakdown;
use crate::netctl::{NetControlConfig, NetDecision, SwitchCause};
use crate::policy::{self, EnergyParams, NodeEstimates};
use crate::profiler::Profiler;
use crate::strategy::PlacementPlan;
use lgv_middleware::{Bus, Switcher, SwitcherConfig, TopicName};
use lgv_nav::costmap::{Costmap, CostmapConfig};
use lgv_nav::dwa::{DwaConfig, DwaPlanner};
use lgv_nav::frontier::{FrontierConfig, FrontierExplorer};
use lgv_nav::global_planner::{GlobalPlanner, PlannerConfig};
use lgv_nav::velocity_mux::{MuxConfig, VelocityMux};
use lgv_nav::{Amcl, AmclConfig};
use lgv_net::fault::{CloudFaultKind, FaultClock};
use lgv_net::link::{DuplexLink, LinkConfig};
use lgv_net::measure::SignalDirectionEstimator;
use lgv_net::shared::SharedMedium;
use lgv_net::signal::SignalModel;
use lgv_sim::cloud::CloudScheduler;
use lgv_sim::energy::{Component, EnergyLedger};
use lgv_sim::platform::Platform;
use lgv_sim::power::{LgvProfile, TransmitModel};
use lgv_sim::{Battery, Lidar, Vehicle, VehicleConfig};
use lgv_slam::{GMapping, SlamConfig};
use lgv_trace::{MsgId, TraceEvent, Tracer};
use lgv_types::prelude::*;
use std::collections::HashMap;

/// Length of one control cycle — also the contention window of the
/// fleet's shared cloud scheduler and shared wireless medium, so
/// "concurrent" means "within the same lockstep round".
pub const CONTROL_PERIOD: Duration = Duration::from_millis(200);
pub(crate) const SUBSTEP: Duration = Duration::from_millis(10);
pub(crate) const GOAL_TOLERANCE: f64 = 0.35;
/// How long freshly-invoked nodes take to rebuild equivalent state
/// from live sensor data when migration cannot deliver it (the
/// costmap's obstacle history ages out on this scale anyway). Doubles
/// as the migration deadline: a transfer still in flight at this
/// point delivers state the destination no longer needs.
pub(crate) const REBUILD_HORIZON: Duration = Duration::from_secs(8);

/// One vehicle's complete runtime wiring: simulated hardware, the real
/// algorithm stack, middleware over the radio, Algorithms 1 + 2, and
/// the energy/trace accounting — advanced one 200 ms control cycle at
/// a time so a fleet driver can interleave many sessions.
pub struct VehicleSession {
    cfg: MissionConfig,
    now: SimTime,
    vehicle: Vehicle,
    lidar: Lidar,
    known_map: MapMsg,
    amcl: Option<Amcl>,
    slam: Option<GMapping>,
    costmap: Costmap,
    planner: GlobalPlanner,
    dwa: DwaPlanner,
    mux: VelocityMux,
    frontier: FrontierExplorer,
    tb3: Platform,
    remote: Platform,
    profiler: Profiler,
    controller: Controller,
    governor: ThreadGovernor,
    /// State transfer during Algorithm 2 switches; nodes run cold
    /// (velocity-capped) while their state is in flight.
    migration: Option<MigrationManager>,
    cold_state: bool,
    cold_since: SimTime,
    /// How long the current cold stretch must last before the nodes
    /// are considered rebuilt. Starts at the configured rebuild
    /// horizon; a completed checkpoint shrinks the next crash's
    /// rebuild to the time since that snapshot.
    rebuild_need: Duration,
    /// When the last checkpoint transfer was attempted (cadence gate).
    last_ckpt_attempt: SimTime,
    /// Degraded-mode state machine (active only when
    /// `cfg.recovery.degraded` is set).
    degraded: bool,
    /// First cycle of the current continuous-stress stretch.
    stress_since: Option<SimTime>,
    /// First cycle of the current continuous-health stretch.
    healthy_since: Option<SimTime>,
    degrade_entered_at: SimTime,
    /// Control cycles whose scan was dropped while degraded (the
    /// deadline-miss count the degraded mode exists to zero out).
    missed_cycles_degraded: u64,
    /// Emits one `fault_begin`/`fault_end` pair per scripted window
    /// (the channels apply the fault effects silently).
    fault_clock: FaultClock,
    effective_threads: u32,
    threads_sum: f64,
    threads_n: u64,
    direction: SignalDirectionEstimator,
    class: Classification,
    // Fleet membership (absent for a standalone single-vehicle run).
    vehicle_id: VehicleId,
    cloud: Option<CloudScheduler>,
    /// Deterministic per-admission WAN surcharge when this vehicle's
    /// serving cloud pool is homed in another region: `(from_region,
    /// to_region, hop)`. `None` for unsharded and pool-home vehicles,
    /// so the pre-regional path charges exactly nothing.
    wan_hop: Option<(u32, u32, Duration)>,
    /// Cross-region admissions charged and their summed surcharge.
    wan_crossings: u64,
    wan_extra: Duration,
    // Middleware (present when the deployment offloads).
    switcher: Option<Switcher>,
    robot_bus: Bus,
    remote_bus: Bus,
    cmd_sub: lgv_middleware::bus::Subscriber,
    remote_scan_sub: lgv_middleware::bus::Subscriber,
    remote_enabled: bool,
    plan: PlacementPlan,
    // Pipeline state.
    local_busy_until: SimTime,
    local_pending: Option<(SimTime, VelocityCmd)>,
    remote_busy_until: SimTime,
    remote_pending: Option<(SimTime, VelocityCmd, MsgId)>,
    slam_busy_until: SimTime,
    pose_est: Pose2D,
    pose_conf: f64,
    /// Odometry pose at the last localization output (for dead
    /// reckoning while the SLAM platform is busy).
    odom_at_fix: Option<Pose2D>,
    current_goal: Point2,
    path: PathMsg,
    last_plan_at: Option<SimTime>,
    explored_done_votes: u32,
    /// Frontier centroids that repeatedly proved unplannable.
    frontier_blacklist: Vec<Point2>,
    /// Consecutive planning failures towards the current goal.
    plan_failures: u32,
    // Accounting.
    profile: LgvProfile,
    battery: Battery,
    ledger: EnergyLedger,
    drained_j: f64,
    transmit: TransmitModel,
    prev_uplink_bytes: u64,
    standby: Duration,
    moving: Duration,
    node_cycles: HashMap<NodeKind, f64>,
    makespan_sum: f64,
    makespan_n: u64,
    velocity_trace: Vec<VelocitySample>,
    net_trace: Vec<NetSample>,
    vmax_now: f64,
    tracer: Tracer,
    /// Monotone index of the current 200 ms control cycle (span name
    /// `cycle`, one span per iteration).
    cycle_index: u64,
    /// Lineage id of the scan message currently driving computation
    /// (`NONE` outside remote VDP activations).
    trace_msg: MsgId,
    /// Set once the mission has ended: (completed, reason).
    outcome: Option<(bool, String)>,
}

impl VehicleSession {
    /// Build a session from a mission configuration. All randomness is
    /// forked from `cfg.seed`; the tracer is wired into every
    /// subsystem that emits events.
    pub fn new(cfg: MissionConfig, tracer: Tracer) -> Self {
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let vehicle_cfg = VehicleConfig {
            max_linear: cfg.velocity.hw_cap,
            ..VehicleConfig::default()
        };
        let vehicle = Vehicle::new(vehicle_cfg, cfg.start, rng.fork(1));
        let lidar = Lidar::new(cfg.lidar.clone(), rng.fork(2));

        let dims = *cfg.world.dims();
        let truth_map = cfg.world.to_map_msg(SimTime::EPOCH);

        let (amcl, slam, known_map, costmap, planner, class) = match cfg.workload {
            Workload::Navigation => {
                let amcl = Amcl::new(AmclConfig::default(), &truth_map, cfg.start, rng.fork(3));
                let costmap = Costmap::from_map(CostmapConfig::default(), &truth_map);
                let planner = GlobalPlanner::new(PlannerConfig::default());
                (
                    Some(amcl),
                    None,
                    truth_map,
                    costmap,
                    planner,
                    classify(&table2_with_map()),
                )
            }
            Workload::Exploration => {
                let slam_cfg = SlamConfig {
                    num_particles: cfg.slam_particles,
                    threads: 1,
                    map_dims: dims,
                    ..SlamConfig::default()
                };
                let slam = GMapping::new(slam_cfg, cfg.start, rng.fork(4));
                let empty = MapMsg {
                    stamp: SimTime::EPOCH,
                    dims,
                    cells: vec![MapMsg::UNKNOWN; dims.len()],
                };
                let costmap = Costmap::empty(CostmapConfig::default(), dims);
                let planner = GlobalPlanner::new(PlannerConfig {
                    allow_unknown: true,
                    ..PlannerConfig::default()
                });
                (
                    None,
                    Some(slam),
                    empty,
                    costmap,
                    planner,
                    classify(&table2_without_map()),
                )
            }
        };

        let dwa = DwaPlanner::new(DwaConfig {
            samples: cfg.dwa_samples,
            max_linear: cfg.velocity.hw_cap,
            threads: 1,
            ..DwaConfig::default()
        });

        // Middleware over the simulated radio.
        let robot_bus = Bus::new();
        let remote_bus = Bus::new();
        let sw_cfg = SwitcherConfig {
            up_topics: vec![(TopicName::SCAN, 1)],
            down_topics: vec![(TopicName::CMD_VEL_NAV, 1), (TopicName::PLAN, 1)],
        };
        let cmd_sub = robot_bus.subscribe(TopicName::CMD_VEL_NAV, 1);
        let remote_scan_sub = remote_bus.subscribe(TopicName::SCAN, 1);
        let mut switcher = if cfg.deployment.offloaded() {
            let mut link_cfg = LinkConfig::new(cfg.deployment.site.unwrap(), cfg.wap);
            link_cfg.wireless = cfg.wireless.clone();
            link_cfg.wan_latency = cfg.wan_latency_override;
            let link = DuplexLink::new(link_cfg, &mut rng);
            let mut sw = Switcher::new(link, robot_bus.clone(), remote_bus.clone(), &sw_cfg);
            sw.set_faults(&cfg.faults);
            Some(sw)
        } else {
            None
        };

        // Wire the tracer into every subsystem that emits events.
        robot_bus.set_tracer(tracer.clone());
        remote_bus.set_tracer(tracer.clone());
        if let Some(sw) = switcher.as_mut() {
            sw.set_tracer(tracer.clone());
        }
        let mut profiler = Profiler::new();
        profiler.set_tracer(tracer.clone());
        let mut governor =
            ThreadGovernor::new(GovernorConfig::default(), cfg.deployment.threads.max(1));
        governor.set_tracer(tracer.clone());
        let mut ledger = EnergyLedger::new();
        ledger.set_tracer(tracer.clone());

        let profile = LgvProfile::turtlebot3();
        let battery = Battery::new_wh(cfg.battery_wh.unwrap_or(profile.battery_wh));
        let transmit = TransmitModel {
            power_w: profile.trans_power_w,
        };
        let tb3 = Deployment::local_platform();
        let remote = cfg.deployment.remote_platform();

        // The decision layer: one factory path builds the configured
        // policy (Algorithm 1 by default) and the startup plan, so
        // solo missions and fleet tenants construct their decisions
        // identically.
        let mut controller = Controller::new(
            ControllerConfig {
                velocity: cfg.velocity,
                netctl: NetControlConfig {
                    heartbeat_timeout: cfg.recovery.heartbeat_timeout,
                    backoff_base: cfg.recovery.backoff_base,
                    backoff_cap: cfg.recovery.backoff_cap,
                    ..NetControlConfig::default()
                },
                ..ControllerConfig::default()
            },
            policy::for_mission(&cfg),
            cfg.deployment.offloaded(),
            cfg.adaptive,
        );
        controller.set_tracer(tracer.clone());
        let plan = policy::initial_plan(&class, cfg.deployment.offloaded());

        let start = cfg.start;
        let nav_goal = cfg.nav_goal;
        let wap = cfg.wap;
        let remote_enabled = cfg.deployment.offloaded();
        VehicleSession {
            vehicle,
            lidar,
            known_map,
            amcl,
            slam,
            costmap,
            planner,
            dwa,
            mux: VelocityMux::new(MuxConfig::default()),
            frontier: FrontierExplorer::new(FrontierConfig::default()),
            tb3,
            remote,
            profiler,
            controller,
            governor,
            migration: if cfg.deployment.offloaded() {
                let sm = SignalModel::new(cfg.wireless.clone(), cfg.wap);
                let wan = cfg
                    .wan_latency_override
                    .unwrap_or_else(|| cfg.deployment.site.unwrap().wan_latency());
                let mut mig = MigrationManager::new(sm, wan, rng.fork(0xC3));
                mig.set_tracer(tracer.clone());
                mig.set_faults(cfg.faults.clone());
                mig.set_deadline(cfg.recovery.rebuild_horizon);
                Some(mig)
            } else {
                None
            },
            cold_state: false,
            cold_since: SimTime::EPOCH,
            rebuild_need: cfg.recovery.rebuild_horizon,
            last_ckpt_attempt: SimTime::EPOCH,
            degraded: false,
            stress_since: None,
            healthy_since: None,
            degrade_entered_at: SimTime::EPOCH,
            missed_cycles_degraded: 0,
            fault_clock: FaultClock::new(cfg.faults.clone()),
            effective_threads: cfg.deployment.threads.max(1),
            threads_sum: 0.0,
            threads_n: 0,
            direction: SignalDirectionEstimator::new(wap),
            class,
            vehicle_id: VehicleId::NONE,
            cloud: None,
            wan_hop: None,
            wan_crossings: 0,
            wan_extra: Duration::ZERO,
            switcher,
            robot_bus,
            remote_bus,
            cmd_sub,
            remote_scan_sub,
            remote_enabled,
            plan,
            local_busy_until: SimTime::EPOCH,
            local_pending: None,
            remote_busy_until: SimTime::EPOCH,
            remote_pending: None,
            slam_busy_until: SimTime::EPOCH,
            pose_est: start,
            pose_conf: 1.0,
            odom_at_fix: None,
            current_goal: nav_goal,
            path: PathMsg {
                stamp: SimTime::EPOCH,
                waypoints: vec![],
            },
            last_plan_at: None,
            explored_done_votes: 0,
            frontier_blacklist: Vec::new(),
            plan_failures: 0,
            profile,
            battery,
            ledger,
            drained_j: 0.0,
            transmit,
            prev_uplink_bytes: 0,
            standby: Duration::ZERO,
            moving: Duration::ZERO,
            node_cycles: HashMap::new(),
            makespan_sum: 0.0,
            makespan_n: 0,
            velocity_trace: Vec::new(),
            net_trace: Vec::new(),
            vmax_now: 0.15,
            now: SimTime::EPOCH,
            tracer,
            cycle_index: 0,
            trace_msg: MsgId::NONE,
            outcome: None,
            cfg,
        }
    }

    /// Enrol this session in a fleet as `vehicle`: stamp the tenant id
    /// onto every middleware envelope, contend on the fleet's shared
    /// cloud box and shared access point. Draws **no** randomness, and
    /// both contention models charge a lone tenant exactly zero, so a
    /// fleet of one stays byte-identical to a standalone run.
    pub fn join_fleet(
        &mut self,
        vehicle: VehicleId,
        cloud: Option<CloudScheduler>,
        medium: Option<SharedMedium>,
    ) {
        self.vehicle_id = vehicle;
        if let Some(sw) = self.switcher.as_mut() {
            sw.set_vehicle(vehicle);
            if let Some(m) = medium {
                sw.link_mut().join_shared_medium(m, vehicle.raw());
            }
        }
        self.cloud = cloud;
    }

    /// The fleet id of this session (`VehicleId::NONE` standalone).
    pub fn vehicle(&self) -> VehicleId {
        self.vehicle_id
    }

    /// Charge every remote admission a deterministic WAN hop because
    /// this vehicle's serving cloud pool (homed in `to_region`) is not
    /// colocated with its radio region (`from_region`). Draws no
    /// randomness; a zero `hop` is ignored so the pre-regional path
    /// stays byte-identical.
    pub fn set_wan_hop(&mut self, from_region: u32, to_region: u32, hop: Duration) {
        if hop > Duration::ZERO {
            self.wan_hop = Some((from_region, to_region, hop));
        }
    }

    /// Cross-region admissions charged so far and their total WAN
    /// surcharge (both zero unless [`VehicleSession::set_wan_hop`] was
    /// armed). Read by the fleet driver for per-region stats.
    pub fn wan_stats(&self) -> (u64, Duration) {
        (self.wan_crossings, self.wan_extra)
    }

    /// Current virtual time of this session's clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whether the mission has ended (goal, battery, or time cap).
    pub fn finished(&self) -> bool {
        self.outcome.is_some()
    }

    fn charge_node(&mut self, kind: NodeKind, work: &Work, local: bool) -> Duration {
        *self.node_cycles.entry(kind).or_insert(0.0) += work.total_cycles();
        if local {
            // Eq. 1c dynamic energy on the embedded computer.
            let model = self.profile.compute_model(&self.tb3);
            self.ledger.add(
                Component::EmbeddedComputer,
                model.dynamic_energy(work.total_cycles()),
            );
            let t = self.tb3.exec_time(work, 1);
            self.profiler.record_local_msg(kind, t, self.trace_msg);
            t
        } else {
            let mut t = self.remote.exec_time(work, self.effective_threads);
            // Multi-tenant cloud: the shared box stretches this
            // activation by the admission queueing delay. The inflated
            // time is what the profiler (and thus Algorithm 1's
            // placement) observes — a saturated cloud genuinely looks
            // slower. Zero when the session has the box to itself.
            // Elastic schedulers also report batch joins and replica
            // scaling, forwarded here to the vehicle's tracer so the
            // events carry this session's vehicle id.
            if let Some(cloud) = self.cloud.as_ref() {
                let adm = cloud.admit(
                    self.vehicle_id.raw(),
                    kind,
                    self.now,
                    self.effective_threads,
                    t,
                );
                for s in &adm.scales {
                    self.tracer.emit_at(
                        self.now.as_nanos(),
                        TraceEvent::CloudScale {
                            from_replicas: s.from,
                            to_replicas: s.to,
                            utilization: s.utilization,
                            window: s.window,
                        },
                    );
                }
                if let Some(b) = adm.batch {
                    self.tracer.emit_at(
                        self.now.as_nanos(),
                        TraceEvent::CloudBatch {
                            stage: b.stage.short_name().to_string(),
                            occupancy: b.occupancy,
                            window: b.window,
                            marginal_ns: b.marginal.as_nanos(),
                        },
                    );
                }
                // Cloud fault windows the scheduler first observed on
                // this admission (begin edges, exactly once per
                // window). Failed scale-ups stay ledger-only.
                for f in &adm.faults {
                    let event = match f.kind {
                        CloudFaultKind::ReplicaCrash { replicas } => TraceEvent::ReplicaCrash {
                            replicas: u64::from(replicas),
                            window: f.index,
                            window_ns: f.span.as_nanos(),
                        },
                        CloudFaultKind::Straggler { factor } => TraceEvent::ReplicaStraggle {
                            factor,
                            window: f.index,
                            window_ns: f.span.as_nanos(),
                        },
                        CloudFaultKind::FailedScaleUp => continue,
                    };
                    self.tracer.emit_at(self.now.as_nanos(), event);
                }
                t += adm.delay;
                // Regional sharding: a vehicle whose serving pool is
                // homed in another region pays the deterministic WAN
                // hop on every admission. Like the queueing delay, the
                // surcharge lands in the remote processing time the
                // profiler sees, so Algorithm 1 genuinely prices the
                // cross-region route.
                if let Some((from, to, hop)) = self.wan_hop {
                    t += hop;
                    self.wan_crossings += 1;
                    self.wan_extra += hop;
                    self.tracer.emit_at(
                        self.now.as_nanos(),
                        TraceEvent::WanHop {
                            from_region: from,
                            to_region: to,
                            delay_ns: hop.as_nanos(),
                        },
                    );
                }
            }
            self.profiler.record_remote_msg(kind, t, self.trace_msg);
            if let Some(sw) = self.switcher.as_mut() {
                sw.report_remote_proc_time(kind, t);
            }
            t
        }
    }

    /// Run the VDP (CostmapGen → PathTracking → VelocityMux) on the
    /// given scan; returns the velocity command and its total
    /// processing time on the executing platform.
    fn run_vdp(&mut self, scan: &LaserScan, local: bool) -> (VelocityCmd, Duration) {
        let _prof = lgv_trace::prof::scope("mission/vdp");
        let mut meter = WorkMeter::new();
        {
            let _prof = lgv_trace::prof::scope("nav/costmap_update");
            self.costmap
                .update(&self.known_map, self.pose_est, scan, &mut meter);
        }
        let cm_work = meter.finish();
        let t_cm = self.charge_node(NodeKind::CostmapGen, &cm_work, local);

        self.dwa.set_max_linear(self.vmax_now);
        let dwa_out = {
            let _prof = lgv_trace::prof::scope("nav/dwa");
            self.dwa
                .compute(&self.costmap, self.pose_est, &self.path, self.current_goal)
        };
        let t_pt = self.charge_node(NodeKind::PathTracking, &dwa_out.work, local);

        let mux_work = self.mux.work();
        let t_mux = self.charge_node(NodeKind::VelocityMux, &mux_work, true);

        // Low-confidence localization caps speed (vision-LGV style
        // safety from §IX applies to any degraded estimate).
        let mut twist = dwa_out.twist;
        if self.pose_conf < 0.2 {
            twist.linear = twist.linear.min(0.08);
        }
        let cmd = VelocityCmd {
            stamp: scan.stamp,
            twist,
            source: VelocitySource::Navigation,
        };
        (cmd, t_cm + t_pt + t_mux)
    }

    fn run_localization(&mut self, odom: &OdometryMsg, scan: &LaserScan) {
        match self.cfg.workload {
            Workload::Navigation => {
                let out = {
                    let _prof = lgv_trace::prof::scope("nav/amcl");
                    self.amcl.as_mut().unwrap().process(odom, scan)
                };
                self.charge_node(NodeKind::Localization, &out.work, true);
                self.pose_est = out.pose.pose;
                self.pose_conf = out.pose.confidence;
            }
            Workload::Exploration => {
                // SLAM is an ECN: it may run remotely; when its platform
                // is busy, the scan is dropped (one-length queue) and
                // the pose estimate dead-reckons on odometry — exactly
                // what the ROS map→odom transform chain does between
                // SLAM corrections.
                if self.now < self.slam_busy_until {
                    if let Some(at_fix) = self.odom_at_fix {
                        let delta = at_fix.between(odom.pose);
                        self.pose_est = self.pose_est.compose(delta);
                        self.odom_at_fix = Some(odom.pose);
                    }
                    return;
                }
                let slam_remote = self.remote_enabled && self.plan.remote.contains(NodeKind::Slam);
                let threads = if slam_remote {
                    self.effective_threads as usize
                } else {
                    1
                };
                let slam = self.slam.as_mut().unwrap();
                slam.set_threads(threads);
                let out = slam.process(odom, scan);
                let t = self.charge_node(NodeKind::Slam, &out.work, !slam_remote);
                self.slam_busy_until = self.now + t;
                self.pose_est = out.pose.pose;
                self.pose_conf = out.pose.confidence;
                self.odom_at_fix = Some(odom.pose);
                self.known_map = self.slam.as_ref().unwrap().best_map(self.now);
                self.costmap.set_static_map(&self.known_map);
            }
        }
    }

    fn run_planning(&mut self) {
        if self.cfg.workload == Workload::Exploration {
            let out = self.frontier.select_goal_excluding(
                &self.known_map,
                self.pose_est.position(),
                self.now,
                &self.frontier_blacklist,
                0.6,
            );
            self.charge_node(NodeKind::Exploration, &out.work, true);
            match out.goal {
                Some(g) => {
                    if g.target.distance(self.current_goal) > 0.3 {
                        self.plan_failures = 0;
                    }
                    self.current_goal = g.target;
                    self.explored_done_votes = 0;
                }
                None => self.explored_done_votes += 1,
            }
        }
        // Plan commitment: replanning every decision tick makes the
        // robot flap between near-equal-cost routes (two doorways into
        // the same room) under command latency. Keep the current path
        // unless the goal moved, the robot strayed from it, it expired,
        // or it never existed.
        let goal_moved = self
            .path
            .waypoints
            .last()
            .is_none_or(|w| w.distance(self.current_goal) > 0.6);
        let off_path = {
            let p = self.pose_est.position();
            let d = self
                .path
                .waypoints
                .iter()
                .map(|w| w.distance(p))
                .fold(f64::INFINITY, f64::min);
            d > 1.0
        };
        let expired = self
            .last_plan_at
            .is_none_or(|t| self.now.saturating_since(t) > Duration::from_secs(5));
        if !(goal_moved || off_path || expired || self.path.waypoints.is_empty()) {
            return;
        }

        let plan_result = if self.cfg.workload == Workload::Exploration {
            // Frontier cells often hug the inflation of newly-seen
            // walls; aim for the nearest plannable cell around them.
            self.planner.plan_near(
                &self.costmap,
                self.pose_est.position(),
                self.current_goal,
                0.5,
                self.now,
            )
        } else {
            self.planner.plan(
                &self.costmap,
                self.pose_est.position(),
                self.current_goal,
                self.now,
            )
        };
        match plan_result {
            Ok(res) => {
                self.charge_node(NodeKind::PathPlanning, &res.work, true);
                self.path = res.path;
                self.last_plan_at = Some(self.now);
                self.plan_failures = 0;
            }
            Err(_) => {
                // Keep the previous path; planning failures are routine
                // while the costmap settles. But a frontier goal that
                // stays unplannable is unreachable (e.g. a shadow
                // behind furniture): blacklist it so exploration can
                // move on — and terminate once only blacklisted
                // frontiers remain.
                self.plan_failures += 1;
                if self.cfg.workload == Workload::Exploration && self.plan_failures >= 3 {
                    self.frontier_blacklist.push(self.current_goal);
                    self.plan_failures = 0;
                }
            }
        }
    }

    /// One 200 ms control cycle.
    fn cycle(&mut self) {
        let _prof = lgv_trace::prof::scope("mission/cycle");
        let cycle_start = self.now;
        self.tracer.set_time_ns(cycle_start.as_nanos());
        let span = self.tracer.span_begin("cycle", self.cycle_index);
        self.cycle_index += 1;
        let true_pose = self.vehicle.true_pose();
        let scan = self.lidar.scan(&self.cfg.world, true_pose, cycle_start);
        let odom = self.vehicle.odometry(cycle_start);

        {
            let _prof = lgv_trace::prof::scope("mission/localization");
            self.run_localization(&odom, &scan);
        }

        // 1 Hz planning.
        if (cycle_start.as_nanos() / CONTROL_PERIOD.as_nanos()).is_multiple_of(5) {
            let _prof = lgv_trace::prof::scope("mission/planning");
            self.run_planning();
        }

        // The runtime Controller: Algorithm 1 placement, Eq. 2c
        // velocity, actuation limits, and Algorithm 2 — all from the
        // profiler's latest measurements. The liveness inputs come
        // straight from the robot's own observables: when it last
        // heard the remote, and what its radio diagnostics say.
        let (since_downlink, radio_weak) = match self.switcher.as_ref() {
            Some(sw) => (
                sw.last_downlink_at()
                    .map(|t0| cycle_start.saturating_since(t0)),
                sw.link().radio_weak(true_pose.position(), cycle_start),
            ),
            None => (None, true),
        };
        let inputs = ControlInputs {
            local_vdp: self.estimate_vdp(true),
            cloud_vdp: self.estimate_vdp(false),
            bandwidth: self.profiler.bandwidth(),
            direction: self.profiler.signal_direction(),
            remote_enabled: self.remote_enabled,
            cold_state: self.cold_state,
            exploration_cap: (self.cfg.workload == Workload::Exploration)
                .then_some(self.cfg.exploration_speed_cap),
            since_downlink,
            radio_weak,
            rtt: {
                let measured = self.profiler.rtt();
                if measured > Duration::ZERO {
                    measured
                } else {
                    // The same static WAN prior the cold-start
                    // makespan estimate uses.
                    Duration::from_millis(20)
                }
            },
            nodes: self.node_estimates(),
            energy: EnergyParams {
                local_j_per_gcycle: self.profile.compute_model(&self.tb3).dynamic_energy(1e9),
                tx_power_w: self.transmit.power_w,
            },
        };
        let decision = self.controller.evaluate(cycle_start, &self.class, inputs);
        self.plan = decision.plan;
        let vdp_remote = decision.vdp_remote;
        self.vmax_now = decision.max_linear;
        self.makespan_sum += decision.makespan.as_secs_f64();
        self.makespan_n += 1;
        self.dwa.set_max_angular(decision.max_angular);
        self.mux.set_timeout(decision.mux_timeout);
        match decision.net_decision {
            d @ (NetDecision::InvokeLocal | NetDecision::InvokeRemote) => {
                self.remote_enabled = d == NetDecision::InvokeRemote;
                self.tracer.emit_at(
                    cycle_start.as_nanos(),
                    TraceEvent::NetSwitch {
                        to_remote: self.remote_enabled,
                    },
                );
                if decision.net_cause == SwitchCause::HeartbeatMiss {
                    // The remote host is presumed dead: its state is
                    // unreachable, so migrating it back would stall
                    // against a crashed endpoint. Abort any transfer
                    // in flight and rebuild cold from fresh sensor
                    // data instead — only as far back as the last
                    // completed checkpoint reaches.
                    if let Some(mig) = self.migration.as_mut() {
                        if !mig.abort_checkpoint() && mig.in_progress() {
                            mig.abort();
                            self.tracer
                                .emit_at(cycle_start.as_nanos(), TraceEvent::MigrationAbort);
                        }
                        self.rebuild_need = match mig.take_checkpoint() {
                            Some(at) => cycle_start
                                .saturating_since(at)
                                .min(self.cfg.recovery.rebuild_horizon),
                            None => self.cfg.recovery.rebuild_horizon,
                        };
                    }
                    self.cold_state = true;
                    self.cold_since = cycle_start;
                } else if let Some(mig) = self.migration.as_mut() {
                    // Ship the switched nodes' state (paper §VI-A);
                    // they run cold until it lands. An in-flight
                    // checkpoint stream yields the channel.
                    mig.abort_checkpoint();
                    if let Ok(ticket) =
                        mig.begin(cycle_start, self.plan.remote, self.cfg.slam_particles)
                    {
                        self.tracer.emit_at(
                            cycle_start.as_nanos(),
                            TraceEvent::MigrationStart {
                                bytes: ticket.bytes as u64,
                            },
                        );
                        self.cold_state = true;
                        self.cold_since = cycle_start;
                    }
                }
                // A freshly-offloaded remote gets `heartbeat_timeout`
                // of grace to produce its first downlink before the
                // liveness clock can judge it.
                if self.remote_enabled {
                    if let Some(sw) = self.switcher.as_mut() {
                        sw.reset_downlink_clock(cycle_start);
                    }
                }
            }
            NetDecision::Keep => {}
        }

        // Checkpointed re-offload: while nodes run remotely and the
        // migration channel is idle, periodically stream a compact
        // snapshot of the offloaded state so a later crash rebuilds
        // from the snapshot's age instead of the full horizon.
        if let Some(interval) = self.cfg.recovery.checkpoint_interval {
            if let Some(mig) = self.migration.as_mut() {
                if self.remote_enabled
                    && !self.cold_state
                    && !mig.in_progress()
                    && !self.plan.remote.is_empty()
                    && cycle_start.saturating_since(self.last_ckpt_attempt) >= interval
                {
                    self.last_ckpt_attempt = cycle_start;
                    let _ = mig.begin_checkpoint(
                        cycle_start,
                        self.plan.remote,
                        self.cfg.slam_particles,
                        self.cfg.recovery.checkpoint_fraction,
                    );
                }
            }
        }

        // Degraded-mode autonomy: under sustained stress (blackout or
        // a re-offload backoff that keeps failing while the pipeline
        // runs locally), drop SLAM/DWA fidelity so the 200 ms deadline
        // keeps being met on vehicle silicon; restore — with
        // hysteresis — once the link is healthy again.
        if let Some(dcfg) = self.cfg.recovery.degraded {
            let stressed = self.cfg.deployment.offloaded()
                && !self.remote_enabled
                && (radio_weak || self.controller.offload_failures() >= 2);
            if stressed {
                self.healthy_since = None;
                let since = *self.stress_since.get_or_insert(cycle_start);
                if !self.degraded && cycle_start.saturating_since(since) >= dcfg.trigger_after {
                    self.degraded = true;
                    self.degrade_entered_at = cycle_start;
                    self.missed_cycles_degraded = 0;
                    if let Some(slam) = self.slam.as_mut() {
                        slam.set_active_particles(dcfg.slam_particles);
                    }
                    self.dwa.set_samples(dcfg.dwa_samples);
                    self.tracer.emit_at(
                        cycle_start.as_nanos(),
                        TraceEvent::DegradeEnter {
                            cause: if radio_weak { "blackout" } else { "backoff" }.to_string(),
                            slam_particles: dcfg.slam_particles as u64,
                            dwa_samples: u64::from(dcfg.dwa_samples),
                        },
                    );
                }
            } else {
                self.stress_since = None;
                let since = *self.healthy_since.get_or_insert(cycle_start);
                if self.degraded && cycle_start.saturating_since(since) >= dcfg.restore_hold {
                    self.degraded = false;
                    if let Some(slam) = self.slam.as_mut() {
                        slam.set_active_particles(self.cfg.slam_particles);
                    }
                    self.dwa.set_samples(self.cfg.dwa_samples);
                    self.tracer.emit_at(
                        cycle_start.as_nanos(),
                        TraceEvent::DegradeExit {
                            held_ns: cycle_start
                                .saturating_since(self.degrade_entered_at)
                                .as_nanos(),
                            missed_cycles: self.missed_cycles_degraded,
                        },
                    );
                }
            }
        }

        // §VIII-E thread governor: scale remote parallelism to the
        // velocity actually achieved.
        self.governor
            .observe(self.vmax_now, self.vehicle.twist().linear.abs());
        if self.cfg.adaptive_parallelism && self.cfg.deployment.offloaded() {
            self.effective_threads = self.governor.recommend();
        }
        self.threads_sum += self.effective_threads as f64;
        self.threads_n += 1;

        // Dispatch the VDP activation. A previous activation whose
        // completion fell between substeps must flush before it can be
        // overwritten.
        self.flush_local_pending(cycle_start);
        if vdp_remote {
            // Ship the scan; the remote worker activates on delivery.
            let _ = self.robot_bus.publish(TopicName::SCAN, &scan);
        } else if cycle_start >= self.local_busy_until {
            let (cmd, t) = self.run_vdp(&scan, true);
            self.local_busy_until = cycle_start + t;
            self.local_pending = Some((cycle_start + t, cmd));
        } else if self.degraded {
            // Local platform still busy → this scan is dropped
            // (1-queue): a missed control deadline. Counting these
            // while degraded is the SLO the reduced fidelity exists
            // to drive to zero.
            self.missed_cycles_degraded += 1;
        }
        // else: local platform busy → this scan is dropped (1-queue).

        // Substep loop: network, deliveries, actuation, energy.
        {
            let _prof = lgv_trace::prof::scope("mission/substeps");
            let substeps = (CONTROL_PERIOD.as_nanos() / SUBSTEP.as_nanos()) as u32;
            for _ in 0..substeps {
                self.substep(vdp_remote);
            }
        }
        self.tracer.set_time_ns(self.now.as_nanos());

        // End-of-cycle measurements for Algorithm 2.
        let pos = self.vehicle.true_pose().position();
        let dir = self.direction.update(self.now, pos);
        self.profiler.record_signal_direction(dir);
        if let Some(sw) = self.switcher.as_mut() {
            let bw = sw.downlink_bandwidth(self.now);
            self.profiler.record_bandwidth(bw);
            if let Some(rtt) = sw.rtt().latest() {
                self.profiler.record_rtt(rtt);
            }
        }

        if self.cfg.record_traces {
            let twist = self.vehicle.twist();
            self.velocity_trace.push(VelocitySample {
                t: self.now.as_secs_f64(),
                vmax: self.vmax_now,
                actual: twist.linear.abs(),
                position: self.vehicle.true_pose().position(),
            });
            self.net_trace.push(NetSample {
                t: self.now.as_secs_f64(),
                bandwidth: self.profiler.bandwidth(),
                rtt_ms: self.profiler.rtt().as_millis_f64(),
                direction: dir,
                remote_active: self.remote_enabled,
            });
        }

        self.tracer.emit_with(|| TraceEvent::MissionProgress {
            x: pos.x,
            y: pos.y,
            goal_x: self.current_goal.x,
            goal_y: self.current_goal.y,
            goal_dist: pos.distance(self.current_goal),
            battery_soc: self.battery.soc(),
        });
        self.ledger.trace_flush();
        self.tracer.span_end(span);
    }

    /// Estimate the VDP makespan for both worlds from the profiler
    /// (falls back to the static Table II profile before data exists).
    fn estimate_vdp(&self, local: bool) -> Duration {
        let measured = if local {
            self.profiler.local_vdp_time()
        } else {
            self.profiler.cloud_vdp_time(self.class.t3)
        };
        if measured > Duration::ZERO {
            return measured;
        }
        // Cold start: price the static profile on the platforms.
        let profiles = match self.cfg.workload {
            Workload::Navigation => table2_with_map(),
            Workload::Exploration => table2_without_map(),
        };
        let mut total = Duration::ZERO;
        for p in &profiles {
            if !p.kind.on_vdp() {
                continue;
            }
            total += if local {
                self.tb3.exec_time(&p.work, 1)
            } else {
                self.remote.exec_time(&p.work, self.effective_threads)
            };
        }
        if !local {
            total += Duration::from_millis(20);
        }
        total
    }

    /// Per-node local/remote processing-time and demand estimates for
    /// the decision layer: the profiler's live measurements where they
    /// exist, the static Table II profile priced on the platform
    /// models otherwise (the same cold-start fallback as
    /// [`Self::estimate_vdp`]).
    fn node_estimates(&self) -> NodeEstimates {
        let profiles = match self.cfg.workload {
            Workload::Navigation => table2_with_map(),
            Workload::Exploration => table2_without_map(),
        };
        let mut nodes = NodeEstimates::default();
        for p in &profiles {
            nodes.set_demand(p.kind, p.cycles_per_sec() / 1e9);
            nodes.set_local(
                p.kind,
                self.profiler
                    .node_time(p.kind, Placement::Local)
                    .unwrap_or_else(|| self.tb3.exec_time(&p.work, 1)),
            );
            nodes.set_remote(
                p.kind,
                self.profiler
                    .node_time(p.kind, Placement::Remote)
                    .unwrap_or_else(|| self.remote.exec_time(&p.work, self.effective_threads)),
            );
        }
        nodes
    }

    fn substep(&mut self, vdp_remote: bool) {
        let t = self.now;
        self.tracer.set_time_ns(t.as_nanos());
        let pos = self.vehicle.true_pose().position();

        // Scripted fault-window edges: exactly one begin/end pair per
        // window, emitted here so the channels (which each hold their
        // own injector) stay silent about scheduling.
        for edge in self.fault_clock.poll(t) {
            let event = if edge.begin {
                TraceEvent::FaultBegin {
                    fault: edge.kind.label().to_string(),
                    window: edge.window,
                    window_ns: edge.span.as_nanos(),
                }
            } else {
                TraceEvent::FaultEnd {
                    fault: edge.kind.label().to_string(),
                    window: edge.window,
                }
            };
            self.tracer.emit_at(t.as_nanos(), event);
        }

        // Network relay.
        if let Some(sw) = self.switcher.as_mut() {
            sw.tick(t, pos);
            // Eq. 1b: transmission energy for new uplink bytes.
            let sent = sw.uplink_bytes_sent;
            let delta = (sent - self.prev_uplink_bytes) as usize;
            self.prev_uplink_bytes = sent;
            if delta > 0 {
                let e = self.transmit.energy(delta, sw.link().uplink_bps());
                self.ledger.add(Component::Wireless, e);
            }
        }

        // State migration / checkpoint transfer. The manager's
        // deadline (the rebuild horizon) bounds it: past that point
        // the destination nodes have reconstructed equivalent state
        // from fresh sensor data (the costmap's obstacle history ages
        // out after ~5 s anyway), so a still-running transfer is
        // aborted and counted as an offload failure for the
        // re-offload backoff. Checkpoint streams tick here too, while
        // the session is warm.
        if self.cold_state || self.migration.as_ref().is_some_and(|m| m.in_progress()) {
            if let Some(mig) = self.migration.as_mut() {
                match mig.tick(t, pos) {
                    Some(MigrationEvent::Done(done)) => {
                        self.tracer.emit_at(
                            t.as_nanos(),
                            TraceEvent::MigrationCommit {
                                elapsed_ns: done.elapsed.as_nanos(),
                                attempts: done.attempts,
                            },
                        );
                        self.cold_state = false;
                    }
                    Some(MigrationEvent::CheckpointDone(done)) => {
                        self.tracer.emit_at(
                            t.as_nanos(),
                            TraceEvent::Checkpoint {
                                bytes: done.ticket.bytes as u64,
                                elapsed_ns: done.elapsed.as_nanos(),
                            },
                        );
                    }
                    Some(MigrationEvent::TimedOut { .. }) => {
                        // The manager already cancelled the segments
                        // and emitted `migration_timeout`.
                        self.tracer
                            .emit_at(t.as_nanos(), TraceEvent::MigrationAbort);
                        self.cold_state = false;
                        self.controller.record_offload_failure(t);
                    }
                    None => {
                        // Crash fallback: no transfer is running (the
                        // remote died with the state); cold until the
                        // nodes have rebuilt from live sensor data —
                        // or from the last checkpoint, which shrinks
                        // `rebuild_need` below the full horizon.
                        if self.cold_state
                            && !mig.in_progress()
                            && t.saturating_since(self.cold_since) >= self.rebuild_need
                        {
                            self.cold_state = false;
                        }
                    }
                }
            }
        }

        // Remote worker: flush a completed command first, then
        // activate on scan delivery.
        if vdp_remote {
            self.flush_remote_pending(t);
            if let Ok(Some((scan, msg))) = self.remote_scan_sub.recv_latest_tagged::<LaserScan>() {
                if t >= self.remote_busy_until {
                    self.trace_msg = msg;
                    let (cmd, dur) = self.run_vdp(&scan, false);
                    self.trace_msg = MsgId::NONE;
                    self.remote_busy_until = t + dur;
                    self.remote_pending = Some((t + dur, cmd, msg));
                    self.flush_remote_pending(t);
                }
            }
        } else if self.switcher.is_some() {
            // Probe stream so Algorithm 2 can still measure bandwidth
            // while running locally (a real system keeps a heartbeat).
            let probe = VelocityCmd {
                stamp: t,
                twist: Twist::STOP,
                source: VelocitySource::Navigation,
            };
            let _ = self.remote_bus.publish(TopicName::PLAN, &probe);
        }

        // Local pipeline completion.
        self.flush_local_pending(t);
        // Downlink deliveries → mux.
        while let Some(bytes) = self.cmd_sub.recv_bytes() {
            if let Ok(cmd) = lgv_middleware::from_bytes::<VelocityCmd>(&bytes) {
                self.mux.submit(cmd);
            }
        }

        // Actuation.
        let selected = self.mux.select(t);
        self.vehicle.command(selected.twist);
        let applied = self.vehicle.step(&self.cfg.world, SUBSTEP);

        // Energy integration (Eq. 1a components).
        let dt = SUBSTEP;
        self.ledger
            .add_power(Component::Sensor, self.profile.max_power.sensor, dt);
        self.ledger.add_power(
            Component::Microcontroller,
            self.profile.max_power.microcontroller,
            dt,
        );
        let ec_model = self.profile.compute_model(&self.tb3);
        self.ledger
            .add_power(Component::EmbeddedComputer, ec_model.idle_w, dt);
        let motor = self.profile.motor_model();
        let p_motor = motor.power(applied.linear, self.vehicle.accel_demand());
        self.ledger.add_power(Component::Motor, p_motor, dt);

        // Standby/moving split (Eq. 2a).
        if applied.linear.abs() < 0.01 && applied.angular.abs() < 0.05 {
            self.standby += dt;
        } else {
            self.moving += dt;
        }

        self.now += SUBSTEP;
    }

    /// Submit a completed local VDP command whose ready time has
    /// passed (stamped at production time).
    fn flush_local_pending(&mut self, now: SimTime) {
        if let Some((ready, mut cmd)) = self.local_pending {
            if now >= ready {
                cmd.stamp = ready;
                self.mux.submit(cmd);
                self.local_pending = None;
            }
        }
    }

    /// Publish a completed remote VDP command whose ready time has
    /// passed (stamped at production time; the switcher ships it).
    fn flush_remote_pending(&mut self, now: SimTime) {
        if let Some((ready, mut cmd, parent)) = self.remote_pending {
            if now >= ready {
                cmd.stamp = ready;
                let _ = self
                    .remote_bus
                    .publish_from(TopicName::CMD_VEL_NAV, &cmd, parent);
                self.remote_pending = None;
            }
        }
    }

    fn goal_reached(&self) -> bool {
        match self.cfg.workload {
            Workload::Navigation => {
                self.vehicle
                    .true_pose()
                    .position()
                    .distance(self.cfg.nav_goal)
                    < GOAL_TOLERANCE
            }
            Workload::Exploration => self.explored_done_votes >= 2,
        }
    }

    /// Emit the mission-start trace event. Call once before stepping.
    pub fn begin(&mut self) {
        self.tracer.set_time_ns(self.now.as_nanos());
        self.tracer.emit_with(|| TraceEvent::MissionStart {
            workload: format!("{:?}", self.cfg.workload),
            deployment: self.cfg.deployment.label.to_string(),
            seed: self.cfg.seed,
        });
    }

    /// Advance one 200 ms control cycle and apply the end-of-cycle
    /// mission checks (battery depletion, goal, time cap). Returns
    /// `true` while the mission is still running; once it returns
    /// `false` the session is finished and further calls are no-ops.
    pub fn step(&mut self) -> bool {
        if self.outcome.is_some() {
            return false;
        }
        if self.now.as_nanos() >= self.cfg.max_time.as_nanos() {
            self.outcome = Some((false, format!("time cap {} expired", self.cfg.max_time)));
            return false;
        }
        self.cycle();
        // Coulomb-count the battery as energy is spent; an empty
        // pack ends the mission on the spot (the paper's core
        // motivation: the 19.98 Wh pack bounds everything).
        let spent = self.ledger.total_joules();
        self.battery.drain(spent - self.drained_j);
        self.drained_j = spent;
        if self.battery.depleted() {
            self.outcome = Some((
                false,
                format!("battery depleted after {:.0}s", self.now.as_secs_f64()),
            ));
            return false;
        }
        if self.goal_reached() {
            self.outcome = Some((true, "goal reached".into()));
            return false;
        }
        true
    }

    /// Emit the mission-end trace events and assemble the report.
    pub fn finish(mut self) -> MissionReport {
        let (completed, reason) = self
            .outcome
            .take()
            .unwrap_or_else(|| (false, format!("time cap {} expired", self.cfg.max_time)));
        self.tracer.set_time_ns(self.now.as_nanos());
        self.ledger.trace_flush();
        if self.degraded {
            // The mission ended still degraded: close the span so the
            // analyzer's degraded-time accounting balances.
            self.tracer.emit_with(|| TraceEvent::DegradeExit {
                held_ns: self
                    .now
                    .saturating_since(self.degrade_entered_at)
                    .as_nanos(),
                missed_cycles: self.missed_cycles_degraded,
            });
        }
        self.tracer.emit_with(|| TraceEvent::MissionEnd {
            completed,
            reason: reason.clone(),
        });
        self.tracer.flush();

        let total = self.standby + self.moving;
        let mut node_gcycles: Vec<(NodeKind, f64)> = self
            .node_cycles
            .iter()
            .map(|(k, c)| (*k, c / 1e9))
            .collect();
        node_gcycles.sort_by_key(|(k, _)| *k);
        MissionReport {
            completed,
            reason,
            time: TimeBreakdown {
                standby: self.standby,
                moving: self.moving,
            },
            energy: self.ledger.report(total),
            distance: self.vehicle.distance_travelled(),
            velocity_trace: self.velocity_trace,
            net_trace: self.net_trace,
            node_gcycles,
            avg_vdp_makespan: Duration::from_secs_f64(
                self.makespan_sum / self.makespan_n.max(1) as f64,
            ),
            net_switches: self.controller.net_switches(),
            avg_threads: self.threads_sum / self.threads_n.max(1) as f64,
            battery_soc: self.battery.soc(),
        }
    }

    /// Run the mission to completion (or to the time cap).
    pub fn run(mut self) -> MissionReport {
        self.begin();
        while self.step() {}
        self.finish()
    }
}
