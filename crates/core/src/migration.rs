//! Node state migration (paper §VI-A / §VII).
//!
//! When Algorithm 2 moves nodes between hosts, their *state* has to
//! follow: "the LGV will invoke offloaded computation nodes locally
//! and migrate related states back from the cloud". State transfer is
//! control traffic — it must arrive completely — so it rides the
//! reliable [`TcpChannel`] rather than the freshness-first UDP paths.
//!
//! Until the state lands, the freshly-invoked node runs *cold*
//! (costmap without its obstacle history, path tracker without its
//! dynamic-window context), and the Controller caps the velocity — the
//! "spend much time to restart mission without state migration"
//! failure the paper warns about is exactly what this machinery
//! avoids.

use lgv_net::signal::SignalModel;
use lgv_net::TcpChannel;
use lgv_trace::Tracer;
use lgv_types::prelude::*;
use serde::{Deserialize, Serialize};

/// Estimated wire size of a node's migratable state (bytes).
///
/// CostmapGen carries its obstacle-layer marks; PathTracking its
/// dynamic-window context; SLAM dominates with per-particle poses,
/// weights, and the delta of its occupancy maps.
pub fn state_size_bytes(kind: NodeKind, slam_particles: usize) -> usize {
    match kind {
        NodeKind::CostmapGen => 20 * 1024,
        NodeKind::PathTracking => 256,
        NodeKind::VelocityMux => 64,
        NodeKind::Slam => slam_particles * 2 * 1024,
        NodeKind::Localization => 4 * 1024,
        NodeKind::PathPlanning | NodeKind::Exploration => 128,
    }
}

/// A migration in progress.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationTicket {
    /// Which nodes are moving.
    pub nodes: NodeSet,
    /// When the transfer started.
    pub started: SimTime,
    /// Total bytes being shipped.
    pub bytes: usize,
}

/// Outcome of a completed migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationDone {
    /// The ticket that completed.
    pub ticket: MigrationTicket,
    /// How long the transfer took.
    pub elapsed: Duration,
    /// Transmission attempts used (> segments ⇒ retransmissions).
    pub attempts: u64,
}

/// Ships node state over a reliable channel during placement switches.
#[derive(Debug)]
pub struct MigrationManager {
    tcp: TcpChannel,
    active: Option<(MigrationTicket, u64)>,
    /// Completed migrations (diagnostics).
    pub completed: u64,
    segment_bytes: usize,
    tracer: Tracer,
}

impl MigrationManager {
    /// Build over the mission's radio model; `wan_latency` as for the
    /// data links.
    pub fn new(signal: SignalModel, wan_latency: Duration, rng: SimRng) -> Self {
        MigrationManager {
            tcp: TcpChannel::new(signal, wan_latency, rng),
            active: None,
            completed: 0,
            segment_bytes: 1400, // one MTU-ish segment
            tracer: Tracer::default(),
        }
    }

    /// Route the reliable channel's send/loss/deliver events to
    /// `tracer` (direction label `tcp`); segments of one migration all
    /// share a single lineage id allocated at [`Self::begin`].
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tcp.set_tracer(tracer.clone(), "tcp");
        self.tracer = tracer;
    }

    /// Is a transfer currently in flight?
    pub fn in_progress(&self) -> bool {
        self.active.is_some()
    }

    /// Begin migrating the state of `nodes` at `now`. Returns `None`
    /// (and does nothing) if a transfer is already running — the
    /// Controller's dwell time makes back-to-back switches rare, and
    /// the newest placement wins once the current transfer lands.
    pub fn begin(
        &mut self,
        now: SimTime,
        nodes: NodeSet,
        slam_particles: usize,
    ) -> Option<MigrationTicket> {
        if self.active.is_some() || nodes.is_empty() {
            return None;
        }
        let bytes: usize = nodes.iter().map(|k| state_size_bytes(k, slam_particles)).sum();
        let ticket = MigrationTicket { nodes, started: now, bytes };
        let segments = bytes.div_ceil(self.segment_bytes).max(1);
        let msg = self.tracer.alloc_msg();
        let mut last_seq = 0;
        for i in 0..segments {
            let len = self.segment_bytes.min(bytes - i * self.segment_bytes);
            last_seq = self.tcp.send_tagged(now, bytes::Bytes::from(vec![0u8; len]), msg);
        }
        self.active = Some((ticket, last_seq));
        Some(ticket)
    }

    /// Abandon the in-flight transfer (the destination will rebuild
    /// state from fresh sensor data instead — the paper's "restart
    /// mission without state migration" fallback).
    pub fn abort(&mut self) {
        self.active = None;
    }

    /// Advance the transfer; returns the completion record when the
    /// last segment has been delivered.
    pub fn tick(&mut self, now: SimTime, robot: Point2) -> Option<MigrationDone> {
        self.tcp.tick(now, robot);
        let (ticket, last_seq) = self.active?;
        let mut done = false;
        while let Some((seq, _, _)) = self.tcp.recv() {
            if seq == last_seq {
                done = true;
            }
        }
        if !done {
            return None;
        }
        self.active = None;
        self.completed += 1;
        Some(MigrationDone {
            ticket,
            elapsed: now.saturating_since(ticket.started),
            attempts: self.tcp.stats().attempts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgv_net::signal::WirelessConfig;

    fn manager() -> MigrationManager {
        let cfg = WirelessConfig { jitter: Duration::ZERO, ..WirelessConfig::default() }
            .with_weak_radius(25.0);
        let sm = SignalModel::new(cfg, Point2::new(0.0, 0.0));
        MigrationManager::new(sm, Duration::from_millis(12), SimRng::seed_from_u64(5))
    }

    fn drive(m: &mut MigrationManager, from_ms: u64, pos: Point2, limit_s: u64) -> Option<(MigrationDone, SimTime)> {
        let mut t = SimTime::EPOCH + Duration::from_millis(from_ms);
        for _ in 0..(limit_s * 100) {
            t += Duration::from_millis(10);
            if let Some(done) = m.tick(t, pos) {
                return Some((done, t));
            }
        }
        None
    }

    #[test]
    fn state_sizes_are_ordered_sensibly() {
        assert!(state_size_bytes(NodeKind::Slam, 30) > state_size_bytes(NodeKind::CostmapGen, 30));
        assert!(
            state_size_bytes(NodeKind::CostmapGen, 30) > state_size_bytes(NodeKind::PathTracking, 30)
        );
        // SLAM state scales with the particle count.
        assert_eq!(
            state_size_bytes(NodeKind::Slam, 60),
            2 * state_size_bytes(NodeKind::Slam, 30)
        );
    }

    #[test]
    fn vdp_state_migrates_quickly_near_the_wap() {
        let mut m = manager();
        let nodes = NodeSet::from_iter([NodeKind::CostmapGen, NodeKind::PathTracking]);
        let ticket = m.begin(SimTime::EPOCH, nodes, 30).expect("ticket");
        assert!(ticket.bytes > 20_000);
        assert!(m.in_progress());
        let (done, _) = drive(&mut m, 0, Point2::new(1.0, 0.0), 30).expect("completes");
        assert_eq!(done.ticket.nodes, nodes);
        assert!(
            done.elapsed < Duration::from_secs(2),
            "near-WAP migration took {}",
            done.elapsed
        );
        assert!(!m.in_progress());
    }

    #[test]
    fn slam_state_takes_longer_than_vdp_state() {
        let mut a = manager();
        a.begin(SimTime::EPOCH, NodeSet::single(NodeKind::PathTracking), 30);
        let (fast, _) = drive(&mut a, 0, Point2::new(1.0, 0.0), 30).unwrap();
        let mut b = manager();
        b.begin(SimTime::EPOCH, NodeSet::single(NodeKind::Slam), 30);
        let (slow, _) = drive(&mut b, 0, Point2::new(1.0, 0.0), 60).unwrap();
        assert!(slow.elapsed > fast.elapsed, "{} vs {}", slow.elapsed, fast.elapsed);
    }

    #[test]
    fn migration_survives_a_lossy_link() {
        let mut m = manager();
        m.begin(SimTime::EPOCH, NodeSet::single(NodeKind::CostmapGen), 30);
        // Lossy but not dead (the robot is walking back into range).
        let (done, _) = drive(&mut m, 0, Point2::new(20.0, 0.0), 120).expect("eventually lands");
        assert!(done.attempts as usize > done.ticket.bytes / 1400, "retransmissions expected");
    }

    #[test]
    fn only_one_migration_at_a_time() {
        let mut m = manager();
        assert!(m.begin(SimTime::EPOCH, NodeSet::single(NodeKind::CostmapGen), 30).is_some());
        assert!(m.begin(SimTime::EPOCH, NodeSet::single(NodeKind::Slam), 30).is_none());
        assert!(m.begin(SimTime::EPOCH, NodeSet::EMPTY, 30).is_none());
    }
}
