//! Node state migration (paper §VI-A / §VII).
//!
//! When Algorithm 2 moves nodes between hosts, their *state* has to
//! follow: "the LGV will invoke offloaded computation nodes locally
//! and migrate related states back from the cloud". State transfer is
//! control traffic — it must arrive completely — so it rides the
//! reliable [`TcpChannel`] rather than the freshness-first UDP paths.
//!
//! Until the state lands, the freshly-invoked node runs *cold*
//! (costmap without its obstacle history, path tracker without its
//! dynamic-window context), and the Controller caps the velocity — the
//! "spend much time to restart mission without state migration"
//! failure the paper warns about is exactly what this machinery
//! avoids.

use lgv_net::signal::SignalModel;
use lgv_net::TcpChannel;
use lgv_trace::Tracer;
use lgv_types::prelude::*;
use serde::{Deserialize, Serialize};

/// Estimated wire size of a node's migratable state (bytes).
///
/// CostmapGen carries its obstacle-layer marks; PathTracking its
/// dynamic-window context; SLAM dominates with per-particle poses,
/// weights, and the delta of its occupancy maps.
pub fn state_size_bytes(kind: NodeKind, slam_particles: usize) -> usize {
    match kind {
        NodeKind::CostmapGen => 20 * 1024,
        NodeKind::PathTracking => 256,
        NodeKind::VelocityMux => 64,
        NodeKind::Slam => slam_particles * 2 * 1024,
        NodeKind::Localization => 4 * 1024,
        NodeKind::PathPlanning | NodeKind::Exploration => 128,
    }
}

/// A migration in progress.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationTicket {
    /// Which nodes are moving.
    pub nodes: NodeSet,
    /// When the transfer started.
    pub started: SimTime,
    /// Total bytes being shipped.
    pub bytes: usize,
}

/// Outcome of a completed migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationDone {
    /// The ticket that completed.
    pub ticket: MigrationTicket,
    /// How long the transfer took.
    pub elapsed: Duration,
    /// Transmission attempts used (> segments ⇒ retransmissions).
    pub attempts: u64,
}

/// Why [`MigrationManager::begin`] refused to start a transfer. The
/// two cases need different reactions: `Busy` means try again after
/// the in-flight transfer resolves; `EmptyNodeSet` means the caller
/// asked to move nothing and no transfer will ever be needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeginError {
    /// A transfer is already in flight — the newest placement wins
    /// once it resolves.
    Busy,
    /// The requested node set is empty; there is no state to move.
    EmptyNodeSet,
}

impl std::fmt::Display for BeginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BeginError::Busy => write!(f, "a migration is already in flight"),
            BeginError::EmptyNodeSet => write!(f, "the node set is empty"),
        }
    }
}

/// What [`MigrationManager::tick`] observed this step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MigrationEvent {
    /// The last segment landed; state is live at the destination.
    Done(MigrationDone),
    /// A checkpoint snapshot landed: crash recovery can now resume
    /// from `ticket.started` instead of rebuilding cold.
    CheckpointDone(MigrationDone),
    /// The transfer blew its deadline and was aborted — all queued
    /// and in-flight segments were cancelled. The destination must
    /// rebuild state cold.
    TimedOut {
        /// The abandoned transfer.
        ticket: MigrationTicket,
        /// How long it had been running.
        elapsed: Duration,
    },
}

/// What an in-flight transfer is carrying: a placement switch's full
/// state, or a periodic checkpoint snapshot. Checkpoints are
/// best-effort — a deadline expiry drops them quietly instead of
/// raising the migration-timeout alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransferKind {
    Migration,
    Checkpoint,
}

/// Ships node state over a reliable channel during placement switches.
#[derive(Debug)]
pub struct MigrationManager {
    tcp: TcpChannel,
    active: Option<(MigrationTicket, u64, TransferKind)>,
    /// Completed migrations (diagnostics).
    pub completed: u64,
    /// Deadline-aborted migrations (diagnostics).
    pub timed_out: u64,
    /// Completed checkpoint snapshots (diagnostics).
    pub checkpoints: u64,
    /// Checkpoint transfers dropped by the deadline (diagnostics).
    pub checkpoint_timeouts: u64,
    /// Start instant of the most recent *completed* checkpoint: the
    /// point crash recovery can resume from.
    last_checkpoint: Option<SimTime>,
    segment_bytes: usize,
    /// Abort a transfer that has run longer than this (`None` = wait
    /// forever, the original behaviour).
    deadline: Option<Duration>,
    tracer: Tracer,
}

impl MigrationManager {
    /// Build over the mission's radio model; `wan_latency` as for the
    /// data links.
    pub fn new(signal: SignalModel, wan_latency: Duration, rng: SimRng) -> Self {
        MigrationManager {
            tcp: TcpChannel::new(signal, wan_latency, rng),
            active: None,
            completed: 0,
            timed_out: 0,
            checkpoints: 0,
            checkpoint_timeouts: 0,
            last_checkpoint: None,
            segment_bytes: 1400, // one MTU-ish segment
            deadline: None,
            tracer: Tracer::default(),
        }
    }

    /// Abort transfers that run longer than `deadline`.
    pub fn set_deadline(&mut self, deadline: Duration) {
        self.deadline = Some(deadline);
    }

    /// Install scripted fault windows on the reliable channel.
    pub fn set_faults(&mut self, schedule: lgv_net::FaultSchedule) {
        self.tcp.set_faults(schedule);
    }

    /// Route the reliable channel's send/loss/deliver events to
    /// `tracer` (direction label `tcp`); segments of one migration all
    /// share a single lineage id allocated at [`Self::begin`].
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tcp.set_tracer(tracer.clone(), "tcp");
        self.tracer = tracer;
    }

    /// Is a transfer currently in flight?
    pub fn in_progress(&self) -> bool {
        self.active.is_some()
    }

    /// Begin migrating the state of `nodes` at `now`. Refuses (and
    /// does nothing) with a typed reason if a transfer is already
    /// running — the Controller's dwell time makes back-to-back
    /// switches rare, and the newest placement wins once the current
    /// transfer resolves — or if there is no state to move.
    pub fn begin(
        &mut self,
        now: SimTime,
        nodes: NodeSet,
        slam_particles: usize,
    ) -> Result<MigrationTicket, BeginError> {
        // An empty node set is a caller bug and never becomes valid,
        // so it outranks the (retryable) busy refusal.
        if nodes.is_empty() {
            return Err(BeginError::EmptyNodeSet);
        }
        if self.active.is_some() {
            return Err(BeginError::Busy);
        }
        let bytes: usize = nodes
            .iter()
            .map(|k| state_size_bytes(k, slam_particles))
            .sum();
        Ok(self.start_transfer(now, nodes, bytes, TransferKind::Migration))
    }

    /// Begin shipping a periodic checkpoint snapshot of the offloaded
    /// `nodes`' state: `fraction` of the full migration size (an
    /// incremental delta, not a cold transfer). Refuses while any
    /// transfer is in flight — checkpoints are best-effort and simply
    /// wait for the next cadence tick.
    pub fn begin_checkpoint(
        &mut self,
        now: SimTime,
        nodes: NodeSet,
        slam_particles: usize,
        fraction: f64,
    ) -> Result<MigrationTicket, BeginError> {
        if nodes.is_empty() {
            return Err(BeginError::EmptyNodeSet);
        }
        if self.active.is_some() {
            return Err(BeginError::Busy);
        }
        let full: usize = nodes
            .iter()
            .map(|k| state_size_bytes(k, slam_particles))
            .sum();
        let bytes = ((full as f64 * fraction.clamp(0.0, 1.0)) as usize).max(64);
        Ok(self.start_transfer(now, nodes, bytes, TransferKind::Checkpoint))
    }

    fn start_transfer(
        &mut self,
        now: SimTime,
        nodes: NodeSet,
        bytes: usize,
        kind: TransferKind,
    ) -> MigrationTicket {
        let ticket = MigrationTicket {
            nodes,
            started: now,
            bytes,
        };
        let segments = bytes.div_ceil(self.segment_bytes).max(1);
        let msg = self.tracer.alloc_msg();
        let mut last_seq = 0;
        for i in 0..segments {
            let len = self.segment_bytes.min(bytes - i * self.segment_bytes);
            last_seq = self
                .tcp
                .send_tagged(now, bytes::Bytes::from(vec![0u8; len]), msg);
        }
        self.active = Some((ticket, last_seq, kind));
        ticket
    }

    /// Abort the in-flight transfer only if it is a checkpoint; a real
    /// migration is left alone. Used when a placement switch needs the
    /// channel a checkpoint is occupying. Returns whether a checkpoint
    /// was cancelled.
    pub fn abort_checkpoint(&mut self) -> bool {
        if matches!(self.active, Some((_, _, TransferKind::Checkpoint))) {
            self.abort();
            true
        } else {
            false
        }
    }

    /// Start instant of the most recent completed checkpoint.
    pub fn last_checkpoint(&self) -> Option<SimTime> {
        self.last_checkpoint
    }

    /// Consume the most recent completed checkpoint (crash recovery
    /// uses it once, then starts accumulating fresh state).
    pub fn take_checkpoint(&mut self) -> Option<SimTime> {
        self.last_checkpoint.take()
    }

    /// Abandon the in-flight transfer (the destination will rebuild
    /// state from fresh sensor data instead — the paper's "restart
    /// mission without state migration" fallback). Also cancels every
    /// queued and in-flight segment on the reliable channel, so a
    /// stale transfer cannot keep retransmitting under (and competing
    /// with) whatever the link does next. Returns the number of
    /// segments flushed.
    pub fn abort(&mut self) -> usize {
        self.active = None;
        self.tcp.cancel_pending()
    }

    /// Advance the transfer; reports completion when the last segment
    /// lands, or a timeout when the deadline expires first (the
    /// transfer is aborted and its segments cancelled — the caller
    /// decides what to do about the placement).
    pub fn tick(&mut self, now: SimTime, robot: Point2) -> Option<MigrationEvent> {
        self.tcp.tick(now, robot);
        let (ticket, last_seq, kind) = self.active?;
        let mut done = false;
        while let Some((seq, _, _)) = self.tcp.recv() {
            if seq == last_seq {
                done = true;
            }
        }
        if done {
            self.active = None;
            let outcome = MigrationDone {
                ticket,
                elapsed: now.saturating_since(ticket.started),
                attempts: self.tcp.stats().attempts,
            };
            return Some(match kind {
                TransferKind::Migration => {
                    self.completed += 1;
                    MigrationEvent::Done(outcome)
                }
                TransferKind::Checkpoint => {
                    self.checkpoints += 1;
                    self.last_checkpoint = Some(ticket.started);
                    MigrationEvent::CheckpointDone(outcome)
                }
            });
        }
        let elapsed = now.saturating_since(ticket.started);
        if let Some(deadline) = self.deadline {
            if elapsed >= deadline {
                self.abort();
                if kind == TransferKind::Checkpoint {
                    // Best-effort snapshot: drop it quietly and let the
                    // next cadence tick try again — no alarm, no
                    // timed-out accounting.
                    self.checkpoint_timeouts += 1;
                    return None;
                }
                self.timed_out += 1;
                self.tracer.emit_at(
                    now.as_nanos(),
                    lgv_trace::TraceEvent::MigrationTimeout {
                        elapsed_ns: elapsed.as_nanos(),
                        bytes: ticket.bytes as u64,
                    },
                );
                return Some(MigrationEvent::TimedOut { ticket, elapsed });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgv_net::signal::WirelessConfig;

    fn manager() -> MigrationManager {
        let cfg = WirelessConfig {
            jitter: Duration::ZERO,
            ..WirelessConfig::default()
        }
        .with_weak_radius(25.0);
        let sm = SignalModel::new(cfg, Point2::new(0.0, 0.0));
        MigrationManager::new(sm, Duration::from_millis(12), SimRng::seed_from_u64(5))
    }

    fn drive(
        m: &mut MigrationManager,
        from_ms: u64,
        pos: Point2,
        limit_s: u64,
    ) -> Option<(MigrationDone, SimTime)> {
        let mut t = SimTime::EPOCH + Duration::from_millis(from_ms);
        for _ in 0..(limit_s * 100) {
            t += Duration::from_millis(10);
            match m.tick(t, pos) {
                Some(MigrationEvent::Done(done)) => return Some((done, t)),
                Some(MigrationEvent::TimedOut { .. }) => return None,
                Some(MigrationEvent::CheckpointDone(_)) | None => {}
            }
        }
        None
    }

    #[test]
    fn state_sizes_are_ordered_sensibly() {
        assert!(state_size_bytes(NodeKind::Slam, 30) > state_size_bytes(NodeKind::CostmapGen, 30));
        assert!(
            state_size_bytes(NodeKind::CostmapGen, 30)
                > state_size_bytes(NodeKind::PathTracking, 30)
        );
        // SLAM state scales with the particle count.
        assert_eq!(
            state_size_bytes(NodeKind::Slam, 60),
            2 * state_size_bytes(NodeKind::Slam, 30)
        );
    }

    #[test]
    fn vdp_state_migrates_quickly_near_the_wap() {
        let mut m = manager();
        let nodes = NodeSet::from_iter([NodeKind::CostmapGen, NodeKind::PathTracking]);
        let ticket = m.begin(SimTime::EPOCH, nodes, 30).expect("ticket");
        assert!(ticket.bytes > 20_000);
        assert!(m.in_progress());
        let (done, _) = drive(&mut m, 0, Point2::new(1.0, 0.0), 30).expect("completes");
        assert_eq!(done.ticket.nodes, nodes);
        assert!(
            done.elapsed < Duration::from_secs(2),
            "near-WAP migration took {}",
            done.elapsed
        );
        assert!(!m.in_progress());
    }

    #[test]
    fn slam_state_takes_longer_than_vdp_state() {
        let mut a = manager();
        a.begin(SimTime::EPOCH, NodeSet::single(NodeKind::PathTracking), 30)
            .expect("begins");
        let (fast, _) = drive(&mut a, 0, Point2::new(1.0, 0.0), 30).unwrap();
        let mut b = manager();
        b.begin(SimTime::EPOCH, NodeSet::single(NodeKind::Slam), 30)
            .expect("begins");
        let (slow, _) = drive(&mut b, 0, Point2::new(1.0, 0.0), 60).unwrap();
        assert!(
            slow.elapsed > fast.elapsed,
            "{} vs {}",
            slow.elapsed,
            fast.elapsed
        );
    }

    #[test]
    fn migration_survives_a_lossy_link() {
        let mut m = manager();
        m.begin(SimTime::EPOCH, NodeSet::single(NodeKind::CostmapGen), 30)
            .expect("begins");
        // Lossy but not dead (the robot is walking back into range).
        let (done, _) = drive(&mut m, 0, Point2::new(20.0, 0.0), 120).expect("eventually lands");
        assert!(
            done.attempts as usize > done.ticket.bytes / 1400,
            "retransmissions expected"
        );
    }

    #[test]
    fn only_one_migration_at_a_time() {
        let mut m = manager();
        assert!(m
            .begin(SimTime::EPOCH, NodeSet::single(NodeKind::CostmapGen), 30)
            .is_ok());
        // Each refusal states its reason — busy is retryable, an
        // empty node set never will be.
        assert_eq!(
            m.begin(SimTime::EPOCH, NodeSet::single(NodeKind::Slam), 30),
            Err(BeginError::Busy)
        );
        assert_eq!(
            m.begin(SimTime::EPOCH, NodeSet::EMPTY, 30),
            Err(BeginError::EmptyNodeSet)
        );
        // Once the transfer resolves, busy clears but empty does not.
        m.abort();
        assert!(m
            .begin(SimTime::EPOCH, NodeSet::single(NodeKind::Slam), 30)
            .is_ok());
        m.abort();
        assert_eq!(
            m.begin(SimTime::EPOCH, NodeSet::EMPTY, 30),
            Err(BeginError::EmptyNodeSet)
        );
    }

    #[test]
    fn abort_flushes_in_flight_segments() {
        let mut m = manager();
        // SLAM state is many segments; none can have landed yet.
        m.begin(SimTime::EPOCH, NodeSet::single(NodeKind::Slam), 30)
            .expect("begins");
        let flushed = m.abort();
        assert!(
            flushed > 10,
            "expected many queued segments, flushed {flushed}"
        );
        assert!(!m.in_progress());
        // The channel really is idle: a fresh migration starts from a
        // clean queue and completes normally.
        m.begin(SimTime::EPOCH, NodeSet::single(NodeKind::PathTracking), 30)
            .expect("restarts");
        let (done, _) = drive(&mut m, 0, Point2::new(1.0, 0.0), 30).expect("completes");
        assert_eq!(done.ticket.nodes, NodeSet::single(NodeKind::PathTracking));
        // No stale SLAM segments got delivered to the new transfer.
        assert_eq!(m.completed, 1);
    }

    #[test]
    fn deadline_aborts_a_stalled_transfer() {
        let mut m = manager();
        m.set_deadline(Duration::from_secs(3));
        m.begin(SimTime::EPOCH, NodeSet::single(NodeKind::CostmapGen), 30)
            .expect("begins");
        // Far outside radio range: nothing will ever be acked.
        let far = Point2::new(500.0, 0.0);
        let mut t = SimTime::EPOCH;
        let mut timed_out = None;
        for _ in 0..1000 {
            t += Duration::from_millis(10);
            if let Some(MigrationEvent::TimedOut { ticket, elapsed }) = m.tick(t, far) {
                timed_out = Some((ticket, elapsed, t));
                break;
            }
        }
        let (ticket, elapsed, at) = timed_out.expect("deadline fires");
        assert!(elapsed >= Duration::from_secs(3));
        assert_eq!(
            at.saturating_since(SimTime::EPOCH).as_nanos(),
            elapsed.as_nanos()
        );
        assert!(ticket.bytes > 0);
        assert!(!m.in_progress());
        assert_eq!(m.timed_out, 1);
        assert_eq!(m.completed, 0);
    }

    #[test]
    fn checkpoint_completes_and_records_the_resume_point() {
        let mut m = manager();
        let nodes = NodeSet::from_iter([NodeKind::CostmapGen, NodeKind::PathTracking]);
        let full: usize = nodes.iter().map(|k| state_size_bytes(k, 30)).sum();
        let started = SimTime::EPOCH + Duration::from_secs(3);
        let ticket = m
            .begin_checkpoint(started, nodes, 30, 0.25)
            .expect("begins");
        assert_eq!(ticket.bytes, full / 4);
        assert!(ticket.bytes < full, "checkpoints are incremental");
        assert!(m.last_checkpoint().is_none(), "not landed yet");
        let mut t = started;
        let mut landed = None;
        for _ in 0..3000 {
            t += Duration::from_millis(10);
            match m.tick(t, Point2::new(1.0, 0.0)) {
                Some(MigrationEvent::CheckpointDone(done)) => {
                    landed = Some(done);
                    break;
                }
                Some(other) => panic!("unexpected event {other:?}"),
                None => {}
            }
        }
        let done = landed.expect("checkpoint lands");
        assert_eq!(done.ticket.started, started);
        assert_eq!(m.checkpoints, 1);
        assert_eq!(m.completed, 0, "checkpoints are not migrations");
        assert_eq!(m.last_checkpoint(), Some(started));
        // Recovery consumes it once.
        assert_eq!(m.take_checkpoint(), Some(started));
        assert_eq!(m.last_checkpoint(), None);
    }

    #[test]
    fn checkpoint_yields_the_channel_to_a_real_migration() {
        let mut m = manager();
        m.begin_checkpoint(
            SimTime::EPOCH,
            NodeSet::single(NodeKind::CostmapGen),
            30,
            0.25,
        )
        .expect("begins");
        assert_eq!(
            m.begin(SimTime::EPOCH, NodeSet::single(NodeKind::Slam), 30),
            Err(BeginError::Busy)
        );
        assert!(m.abort_checkpoint(), "checkpoint steps aside");
        assert!(m
            .begin(SimTime::EPOCH, NodeSet::single(NodeKind::Slam), 30)
            .is_ok());
        // A real migration never steps aside.
        assert!(!m.abort_checkpoint());
        assert!(m.in_progress());
    }

    #[test]
    fn checkpoint_deadline_expiry_is_quiet() {
        let mut m = manager();
        m.set_deadline(Duration::from_secs(3));
        m.begin_checkpoint(
            SimTime::EPOCH,
            NodeSet::single(NodeKind::CostmapGen),
            30,
            0.25,
        )
        .expect("begins");
        let far = Point2::new(500.0, 0.0);
        let mut t = SimTime::EPOCH;
        for _ in 0..1000 {
            t += Duration::from_millis(10);
            // No TimedOut event ever surfaces for a checkpoint.
            assert_eq!(m.tick(t, far), None);
        }
        assert!(!m.in_progress(), "the deadline still cancels the transfer");
        assert_eq!(m.checkpoint_timeouts, 1);
        assert_eq!(m.timed_out, 0, "no migration-timeout alarm");
        assert_eq!(m.last_checkpoint(), None);
    }

    #[test]
    fn no_deadline_means_wait_forever() {
        let mut m = manager();
        m.begin(SimTime::EPOCH, NodeSet::single(NodeKind::CostmapGen), 30)
            .expect("begins");
        let far = Point2::new(500.0, 0.0);
        let mut t = SimTime::EPOCH;
        for _ in 0..2000 {
            t += Duration::from_millis(10);
            assert_eq!(m.tick(t, far), None);
        }
        assert!(
            m.in_progress(),
            "without a deadline the transfer keeps trying"
        );
    }
}
