//! End-to-end mission runner (paper §VII–§VIII).
//!
//! Runs the two standard workloads — **Navigation with a map** and
//! **Exploration without a map** — on a virtual-time loop that wires
//! together every substrate in the workspace:
//!
//! * the simulated vehicle + laser (`lgv-sim`),
//! * the real algorithm implementations (`lgv-nav`, `lgv-slam`),
//! * the pub/sub middleware and cross-host switcher
//!   (`lgv-middleware`) over the simulated radio (`lgv-net`),
//! * the platform timing model pricing every node activation,
//! * the energy ledger integrating Eq. 1, and
//! * the runtime Controller applying Algorithm 1 (fine-grained
//!   migration + Eq. 2c velocity) and Algorithm 2 (network-quality
//!   switching).
//!
//! The engine itself lives in [`crate::session`] as
//! [`VehicleSession`]: this module owns the configuration and report
//! types and the single-vehicle entry points; [`crate::fleet`] runs
//! many sessions interleaved against shared cloud and radio resources.

use crate::deploy::Deployment;
use crate::model::{Goal, TimeBreakdown, VelocityModel};
use crate::policy::PolicyKind;
use crate::recovery::RecoveryConfig;
use crate::session::VehicleSession;
use crate::strategy::PinPolicy;
use lgv_net::fault::FaultSchedule;
use lgv_net::signal::WirelessConfig;
use lgv_sim::energy::EnergyReport;
use lgv_sim::world::{presets, World, WorldBuilder};
use lgv_sim::LidarConfig;
use lgv_trace::Tracer;
use lgv_types::prelude::*;

/// Which standard workload to run (paper §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Navigation with a map: AMCL + costmap + A* + DWA to a goal.
    Navigation,
    /// Exploration without a map: SLAM + frontier + costmap + DWA.
    Exploration,
}

/// Mission configuration.
#[derive(Debug, Clone)]
pub struct MissionConfig {
    /// Workload type.
    pub workload: Workload,
    /// Computation deployment (Fig. 12/13 scenario).
    pub deployment: Deployment,
    /// Algorithm 1 optimization goal.
    pub goal: Goal,
    /// Which offload-decision policy drives the placement each tick
    /// (Algorithm 1 behind the trait is the default; see
    /// [`crate::policy`]).
    pub policy: PolicyKind,
    /// Whether Algorithm 2 (real-time adjustment) is active.
    pub adaptive: bool,
    /// Whether the §VIII-E thread governor is active: scale remote
    /// parallelism down when the environment (not compute) binds the
    /// velocity, saving cloud resources.
    pub adaptive_parallelism: bool,
    /// Safety pinning (§IX extension).
    pub pins: PinPolicy,
    /// Master seed.
    pub seed: u64,
    /// Ground-truth world.
    pub world: World,
    /// Start pose.
    pub start: Pose2D,
    /// Navigation goal (ignored by Exploration).
    pub nav_goal: Point2,
    /// WAP position.
    pub wap: Point2,
    /// Radio parameters.
    pub wireless: WirelessConfig,
    /// Override the wired WAN segment latency (None = site default).
    pub wan_latency_override: Option<Duration>,
    /// Hard wall-clock cap on simulated time.
    pub max_time: Duration,
    /// DWA trajectory samples (Fig. 10's sweep axis).
    pub dwa_samples: u32,
    /// SLAM particle count (Fig. 9's sweep axis).
    pub slam_particles: usize,
    /// Eq. 2c parameters.
    pub velocity: VelocityModel,
    /// Battery capacity override in Wh (None = the vehicle profile's
    /// pack, 19.98 Wh for the Turtlebot3).
    pub battery_wh: Option<f64>,
    /// Laser sensor model (degrade for failure-injection studies).
    pub lidar: LidarConfig,
    /// Safety velocity cap while exploring unknown space (paper
    /// §VIII-D: "due to a larger number of curves and uncertainties in
    /// the path of the workload without a map, the LGV drives at a
    /// slower velocity for safety").
    pub exploration_speed_cap: f64,
    /// Record per-cycle traces (velocity, network) in the report.
    pub record_traces: bool,
    /// Scripted fault windows (blackouts, burst loss, latency spikes,
    /// corruption, remote-host crashes), applied to every channel —
    /// data links and the migration TCP path alike. Empty = no faults.
    pub faults: FaultSchedule,
    /// Failure-recovery policy: rebuild horizon, heartbeat timeout,
    /// re-offload backoff, checkpoint cadence, degraded-mode fidelity.
    /// The default reproduces the historical hardcoded constants with
    /// checkpointing and degraded mode off.
    pub recovery: RecoveryConfig,
}

impl MissionConfig {
    /// The paper's lab navigation evaluation (§VIII-D).
    pub fn navigation_lab(deployment: Deployment) -> Self {
        MissionConfig {
            workload: Workload::Navigation,
            deployment,
            goal: Goal::MissionTime,
            policy: PolicyKind::Algorithm1,
            adaptive: true,
            adaptive_parallelism: false,
            pins: PinPolicy::none(),
            seed: 42,
            world: presets::lab(),
            start: presets::lab_start(),
            nav_goal: presets::lab_goal(),
            wap: Point2::new(6.0, 9.5),
            // Lab-wide coverage: the weak zone starts beyond the room.
            wireless: WirelessConfig::default().with_weak_radius(40.0),
            wan_latency_override: None,
            max_time: Duration::from_secs(600),
            dwa_samples: 1000,
            slam_particles: 30,
            velocity: VelocityModel::default(),
            battery_wh: None,
            lidar: LidarConfig::default(),
            exploration_speed_cap: 0.3,
            record_traces: true,
            faults: FaultSchedule::none(),
            recovery: RecoveryConfig::default(),
        }
    }

    /// The paper's lab exploration evaluation (§VIII-D). Exploration
    /// covers the whole floor at exploration-capped speeds, so the
    /// time budget is larger than navigation's.
    pub fn exploration_lab(deployment: Deployment) -> Self {
        MissionConfig {
            workload: Workload::Exploration,
            max_time: Duration::from_secs(1800),
            ..MissionConfig::navigation_lab(deployment)
        }
    }

    /// A small, fast test arena: 6 × 5 m room, goal 3.5 m away. Used
    /// by the unit tests and the fleet bench as a per-vehicle mission
    /// that completes in well under a minute of virtual time.
    pub fn compact_lab(deployment: Deployment, workload: Workload) -> Self {
        let world = WorldBuilder::new(6.0, 5.0, 0.05)
            .walls()
            .disc(Point2::new(3.0, 2.8), 0.3)
            .build();
        MissionConfig {
            workload,
            deployment,
            goal: Goal::MissionTime,
            policy: PolicyKind::Algorithm1,
            adaptive: true,
            adaptive_parallelism: false,
            pins: PinPolicy::none(),
            seed: 7,
            world,
            start: Pose2D::new(1.0, 2.0, 0.0),
            nav_goal: Point2::new(4.8, 2.0),
            wap: Point2::new(3.0, 4.5),
            wireless: WirelessConfig::default().with_weak_radius(30.0),
            wan_latency_override: None,
            max_time: Duration::from_secs(120),
            dwa_samples: 600,
            slam_particles: 6,
            velocity: VelocityModel::default(),
            battery_wh: None,
            lidar: LidarConfig::default(),
            exploration_speed_cap: 0.3,
            record_traces: true,
            faults: FaultSchedule::none(),
            recovery: RecoveryConfig::default(),
        }
    }
}

/// A velocity-trace sample (Fig. 12 / Fig. 14 series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VelocitySample {
    /// Simulation time (s).
    pub t: f64,
    /// The Eq. 2c maximum velocity in force.
    pub vmax: f64,
    /// Actual vehicle speed.
    pub actual: f64,
    /// Ground-truth position at the sample (for phase analysis).
    pub position: Point2,
}

/// A network-trace sample (Fig. 11 series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetSample {
    /// Simulation time (s).
    pub t: f64,
    /// Downlink packet bandwidth (packets/s).
    pub bandwidth: f64,
    /// Latest observed RTT (ms) — the metric that lies.
    pub rtt_ms: f64,
    /// Signal direction (positive = approaching the WAP).
    pub direction: f64,
    /// Whether the VDP nodes currently run remotely.
    pub remote_active: bool,
}

/// Mission outcome.
#[derive(Debug, Clone)]
pub struct MissionReport {
    /// Whether the mission goal was achieved within the time cap.
    pub completed: bool,
    /// Human-readable completion/failure reason.
    pub reason: String,
    /// Standby/moving decomposition (Eq. 2a).
    pub time: TimeBreakdown,
    /// Per-component energy + total mission time (Fig. 13 content).
    pub energy: EnergyReport,
    /// Distance travelled (m).
    pub distance: f64,
    /// Velocity trace (empty unless `record_traces`).
    pub velocity_trace: Vec<VelocitySample>,
    /// Network trace (empty unless `record_traces`).
    pub net_trace: Vec<NetSample>,
    /// Total Gcycles demanded per node (Table II content).
    pub node_gcycles: Vec<(NodeKind, f64)>,
    /// Mean VDP makespan over the mission.
    pub avg_vdp_makespan: Duration,
    /// Algorithm 2 switches performed.
    pub net_switches: u64,
    /// Mean remote thread count actually used (== deployment threads
    /// unless the §VIII-E governor is active).
    pub avg_threads: f64,
    /// Battery state of charge at mission end, in [0, 1].
    pub battery_soc: f64,
}

impl MissionReport {
    /// Gcycles demanded by one node over the mission.
    pub fn gcycles(&self, kind: NodeKind) -> f64 {
        self.node_gcycles
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0.0, |(_, g)| *g)
    }

    /// FNV-1a checksum over the report's full `Debug` rendering —
    /// every field, every trace sample, every formatted digit. Two
    /// reports fingerprint equal iff the simulations behind them were
    /// byte-identical; the fleet determinism tests compare a
    /// one-vehicle fleet against the single-vehicle runner with this.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in format!("{self:?}").bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Run a mission to completion (or to the time cap).
pub fn run(cfg: MissionConfig) -> MissionReport {
    VehicleSession::new(cfg, Tracer::disabled()).run()
}

/// Run a mission with a [`Tracer`] wired into every subsystem: the
/// buses, the switcher and its link, the Controller, the governor, the
/// Profiler and the energy ledger. The engine drives the tracer's
/// shared virtual clock, so every event is stamped with simulation
/// time and the stream is byte-for-byte deterministic per seed.
pub fn run_traced(cfg: MissionConfig, tracer: Tracer) -> MissionReport {
    VehicleSession::new(cfg, tracer).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgv_sim::energy::Component;

    fn mini_config(deployment: Deployment, workload: Workload) -> MissionConfig {
        MissionConfig::compact_lab(deployment, workload)
    }

    #[test]
    fn local_navigation_reaches_goal() {
        let report = run(mini_config(Deployment::local(), Workload::Navigation));
        assert!(report.completed, "mission failed: {}", report.reason);
        assert!(report.distance > 3.0, "distance {}", report.distance);
        assert!(report.energy.total_joules() > 0.0);
        assert!(report.time.total() > Duration::from_secs(5));
    }

    #[test]
    fn offloaded_navigation_is_faster_and_cheaper() {
        let local = run(mini_config(Deployment::local(), Workload::Navigation));
        let edge = run(mini_config(Deployment::edge_8t(), Workload::Navigation));
        assert!(
            local.completed && edge.completed,
            "{} / {}",
            local.reason,
            edge.reason
        );
        // The headline claims of Fig. 13, directionally.
        assert!(
            edge.time.total() < local.time.total(),
            "edge {} should beat local {}",
            edge.time.total(),
            local.time.total()
        );
        assert!(
            edge.energy.total_joules() < local.energy.total_joules(),
            "edge {} J should beat local {} J",
            edge.energy.total_joules(),
            local.energy.total_joules()
        );
        // Offloading slashes embedded-computer energy specifically.
        // (The mini arena compresses the gap — idle power dominates a
        // short mission; the full-scale factors are checked by the
        // fig13 bench.)
        let ec_local = local.energy.joules(Component::EmbeddedComputer);
        let ec_edge = edge.energy.joules(Component::EmbeddedComputer);
        assert!(ec_edge < ec_local, "EC energy {ec_edge} vs {ec_local}");
    }

    #[test]
    fn offloaded_velocity_cap_is_higher() {
        let local = run(mini_config(Deployment::local(), Workload::Navigation));
        let cloud = run(mini_config(Deployment::cloud_12t(), Workload::Navigation));
        let vmax_local: f64 = local
            .velocity_trace
            .iter()
            .map(|s| s.vmax)
            .fold(0.0, f64::max);
        let vmax_cloud: f64 = cloud
            .velocity_trace
            .iter()
            .map(|s| s.vmax)
            .fold(0.0, f64::max);
        // The mini arena's tiny costmap keeps local VDP times short,
        // so the gap here is modest; the paper-scale 4–5× factor is
        // checked by the fig12 bench on the full lab configuration.
        assert!(
            vmax_cloud > 1.3 * vmax_local,
            "cloud vmax {vmax_cloud} vs local {vmax_local}"
        );
    }

    #[test]
    fn exploration_mission_completes_and_uses_slam() {
        let mut cfg = mini_config(Deployment::edge_8t(), Workload::Exploration);
        cfg.max_time = Duration::from_secs(240);
        let report = run(cfg);
        assert!(report.completed, "exploration failed: {}", report.reason);
        assert!(
            report.gcycles(NodeKind::Slam) > 0.0,
            "SLAM should account cycles"
        );
        assert!(report.gcycles(NodeKind::Exploration) > 0.0);
    }

    #[test]
    fn node_cycle_accounting_covers_pipeline() {
        let report = run(mini_config(Deployment::local(), Workload::Navigation));
        for kind in [
            NodeKind::Localization,
            NodeKind::CostmapGen,
            NodeKind::PathPlanning,
            NodeKind::PathTracking,
            NodeKind::VelocityMux,
        ] {
            assert!(report.gcycles(kind) > 0.0, "{kind} unaccounted");
        }
        // CostmapGen + PathTracking dominate (Table II shape).
        let total: f64 = report.node_gcycles.iter().map(|(_, g)| g).sum();
        let heavy = report.gcycles(NodeKind::CostmapGen) + report.gcycles(NodeKind::PathTracking);
        assert!(heavy / total > 0.8, "ECN share {}", heavy / total);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = run(mini_config(Deployment::edge(), Workload::Navigation));
        let b = run(mini_config(Deployment::edge(), Workload::Navigation));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.distance, b.distance);
        assert_eq!(a.energy.total_joules(), b.energy.total_joules());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_separates_different_runs() {
        let a = run(mini_config(Deployment::edge(), Workload::Navigation));
        let b = run(mini_config(Deployment::local(), Workload::Navigation));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn battery_depletion_aborts_the_mission() {
        let mut cfg = mini_config(Deployment::local(), Workload::Navigation);
        // A toy pack: a few seconds of the ~11 W hotel load.
        cfg.battery_wh = Some(0.02);
        let report = run(cfg);
        assert!(!report.completed);
        assert!(
            report.reason.contains("battery"),
            "reason: {}",
            report.reason
        );
        assert!(report.battery_soc <= 0.0 + 1e-9);
    }

    #[test]
    fn healthy_mission_retains_charge() {
        let report = run(mini_config(Deployment::edge_8t(), Workload::Navigation));
        assert!(report.completed);
        assert!(report.battery_soc > 0.9, "soc {}", report.battery_soc);
    }

    #[test]
    fn report_records_traces() {
        let report = run(mini_config(Deployment::cloud(), Workload::Navigation));
        assert!(!report.velocity_trace.is_empty());
        assert!(!report.net_trace.is_empty());
        assert!(report.avg_vdp_makespan > Duration::ZERO);
    }
}
