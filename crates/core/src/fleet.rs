//! Fleet-scale multi-tenancy: N vehicles, one cloud, one access point.
//!
//! The paper evaluates a single LGV that has the cloud server and the
//! wireless spectrum to itself. A warehouse does not work like that:
//! every vehicle's offloaded pipeline lands on the **same** cloud box
//! and every uplink crosses the **same** WAP. This module runs N
//! [`VehicleSession`]s interleaved on one virtual clock against two
//! shared contention resources:
//!
//! * a [`CloudScheduler`] multiplexing the remote platform's hardware
//!   threads across tenants — per-tenant queueing delay inflates the
//!   remote processing times the profiler measures, so Algorithm 1's
//!   placement genuinely reacts to cloud saturation, and
//! * a [`SharedMedium`] splitting uplink airtime between concurrent
//!   senders, so a crowded WAP stretches scan delivery.
//!
//! **Lockstep determinism.** The driver advances every running session
//! through control cycle `k` before any session starts cycle `k+1`.
//! Both contention models bill window `w` against the *previous*
//! window's census, which is final once a round begins — so results
//! are independent of the order sessions are stepped within a round,
//! and a fleet run is exactly reproducible from its seed.
//!
//! **Fleet-of-one identity.** Vehicle 1 runs the base config verbatim,
//! [`VehicleSession::join_fleet`] draws no randomness, and a lone
//! tenant is charged exactly zero by both models — so a size-1 fleet's
//! [`MissionReport`] is byte-identical (same [`MissionReport::fingerprint`])
//! to [`crate::mission::run`] on the same config.

use crate::mission::{MissionConfig, MissionReport};
use crate::session::{VehicleSession, CONTROL_PERIOD};
use lgv_net::fault::CloudFaultSchedule;
use lgv_net::shared::{MediumStats, SharedMedium};
pub use lgv_sim::cloud::ElasticConfig;
use lgv_sim::cloud::{CloudScheduler, CloudStats};
use lgv_trace::Tracer;
use lgv_types::prelude::*;

/// Golden-ratio mixing constant for deriving per-vehicle seeds.
const SEED_STRIDE: u64 = 0x9e37_79b9_7f4a_7c15;

/// How the fleet's shared cloud box is provisioned.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CloudPolicy {
    /// The paper's fixed box: one replica, every admission charged
    /// independently.
    #[default]
    Fixed,
    /// FogROS-style elastic provisioning: same-stage batching and
    /// replica autoscaling per the given [`ElasticConfig`].
    Elastic(ElasticConfig),
}

/// A fleet of identical missions differing only in their seeds.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The mission every vehicle runs. Vehicle 1 uses it verbatim
    /// (including its seed); later vehicles derive their seeds.
    pub base: MissionConfig,
    /// Number of vehicles (clamped to ≥ 1).
    pub size: usize,
    /// Provisioning policy for the shared cloud (ignored when the
    /// deployment does not offload).
    pub cloud: CloudPolicy,
    /// Deterministic cloud-tier fault schedule (replica crashes,
    /// stragglers, failed scale-ups). Empty by default, which leaves
    /// the scheduler's fast path untouched.
    pub cloud_faults: CloudFaultSchedule,
}

impl FleetConfig {
    /// A fleet of `size` vehicles running `base` against the fixed
    /// (paper) cloud.
    pub fn new(base: MissionConfig, size: usize) -> Self {
        FleetConfig {
            base,
            size,
            cloud: CloudPolicy::Fixed,
            cloud_faults: CloudFaultSchedule::none(),
        }
    }

    /// The same fleet against an elastically provisioned cloud.
    pub fn with_cloud(mut self, cloud: CloudPolicy) -> Self {
        self.cloud = cloud;
        self
    }

    /// The same fleet with a cloud-tier fault schedule injected into
    /// the shared scheduler.
    pub fn with_cloud_faults(mut self, faults: CloudFaultSchedule) -> Self {
        self.cloud_faults = faults;
        self
    }

    /// The configuration vehicle `vehicle` (1-based) runs: the base
    /// config with a seed derived by golden-ratio mixing for vehicles
    /// past the first. Vehicle 1 gets the base verbatim, which is what
    /// makes the size-1 fleet byte-identical to a single-vehicle run.
    pub fn vehicle_config(&self, vehicle: u64) -> MissionConfig {
        let mut cfg = self.base.clone();
        if vehicle > 1 {
            cfg.seed = self.base.seed ^ vehicle.wrapping_mul(SEED_STRIDE);
        }
        cfg
    }
}

/// Outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-vehicle mission reports, in vehicle-id order (vehicle `i`
    /// is at index `i − 1`).
    pub vehicles: Vec<MissionReport>,
    /// Shared cloud admission counters (None when the deployment does
    /// not offload).
    pub cloud: Option<CloudStats>,
    /// Shared access-point contention counters (None when the
    /// deployment does not offload).
    pub uplink: Option<MediumStats>,
    /// Lockstep rounds driven (= the slowest vehicle's cycle count).
    pub rounds: u64,
}

impl FleetReport {
    /// Vehicles that completed their mission.
    pub fn completed(&self) -> usize {
        self.vehicles.iter().filter(|v| v.completed).count()
    }

    /// Mean mission time across vehicles (seconds).
    pub fn mean_mission_secs(&self) -> f64 {
        let n = self.vehicles.len().max(1) as f64;
        self.vehicles
            .iter()
            .map(|v| v.time.total().as_secs_f64())
            .sum::<f64>()
            / n
    }

    /// Mean energy across vehicles (joules).
    pub fn mean_energy_j(&self) -> f64 {
        let n = self.vehicles.len().max(1) as f64;
        self.vehicles
            .iter()
            .map(|v| v.energy.total_joules())
            .sum::<f64>()
            / n
    }
}

/// Run a fleet without tracing.
pub fn run_fleet(cfg: FleetConfig) -> FleetReport {
    run_fleet_traced(cfg, Tracer::disabled())
}

/// Run a fleet with every session's events tagged by vehicle id
/// through a [`Tracer::for_vehicle`] clone per session, all sharing
/// `tracer`'s sink and virtual clock.
pub fn run_fleet_traced(cfg: FleetConfig, tracer: Tracer) -> FleetReport {
    let n = cfg.size.max(1) as u64;
    let offloaded = cfg.base.deployment.offloaded();
    let (cloud, medium) = if offloaded {
        let hw = cfg.base.deployment.remote_platform().hw_threads;
        let sched = match cfg.cloud {
            CloudPolicy::Fixed => CloudScheduler::new(hw, CONTROL_PERIOD),
            CloudPolicy::Elastic(ec) => CloudScheduler::elastic(hw, CONTROL_PERIOD, ec),
        };
        sched.set_faults(cfg.cloud_faults.clone());
        (Some(sched), Some(SharedMedium::new(CONTROL_PERIOD)))
    } else {
        (None, None)
    };

    let mut sessions: Vec<VehicleSession> = (1..=n)
        .map(|v| {
            let mut s = VehicleSession::new(cfg.vehicle_config(v), tracer.for_vehicle(v));
            s.join_fleet(VehicleId(v), cloud.clone(), medium.clone());
            s
        })
        .collect();

    for s in sessions.iter_mut() {
        s.begin();
    }

    // Lockstep rounds: every running session finishes cycle k before
    // any session starts cycle k+1. Sessions drop out individually as
    // their missions end (goal, battery, or time cap).
    let mut running: Vec<bool> = vec![true; sessions.len()];
    let mut rounds = 0u64;
    while running.iter().any(|&r| r) {
        let _prof = lgv_trace::prof::scope("fleet/round");
        rounds += 1;
        for (i, s) in sessions.iter_mut().enumerate() {
            if running[i] {
                running[i] = s.step();
            }
        }
    }

    FleetReport {
        vehicles: sessions.into_iter().map(|s| s.finish()).collect(),
        cloud: cloud.map(|c| c.stats()),
        uplink: medium.map(|m| m.stats()),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;
    use crate::mission::Workload;

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let cfg = FleetConfig::new(
            MissionConfig::compact_lab(Deployment::edge(), Workload::Navigation),
            4,
        );
        assert_eq!(cfg.vehicle_config(1).seed, cfg.base.seed);
        let seeds: Vec<u64> = (1..=4).map(|v| cfg.vehicle_config(v).seed).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(
            seeds,
            (1..=4)
                .map(|v| cfg.vehicle_config(v).seed)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn local_fleet_has_no_shared_resources() {
        let base = MissionConfig::compact_lab(Deployment::local(), Workload::Navigation);
        let report = run_fleet(FleetConfig::new(base, 2));
        assert_eq!(report.vehicles.len(), 2);
        assert!(report.cloud.is_none());
        assert!(report.uplink.is_none());
        assert!(report.rounds > 0);
        assert_eq!(report.completed(), 2, "both local vehicles should finish");
    }

    #[test]
    fn contention_appears_beyond_one_vehicle() {
        let base = MissionConfig::compact_lab(Deployment::edge_8t(), Workload::Navigation);
        let report = run_fleet(FleetConfig::new(base, 2));
        let cloud = report.cloud.expect("offloaded fleet tracks the cloud");
        assert!(cloud.admissions > 0);
        assert!(
            cloud.delayed > 0,
            "two tenants on one edge box should queue"
        );
        let uplink = report.uplink.expect("offloaded fleet tracks the WAP");
        assert!(uplink.contended_sends > 0, "two uplinks should contend");
        assert!(report.mean_mission_secs() > 0.0);
        assert!(report.mean_energy_j() > 0.0);
    }
}
