//! Fleet-scale multi-tenancy: N vehicles, regional contention domains.
//!
//! The paper evaluates a single LGV that has the cloud server and the
//! wireless spectrum to itself. A warehouse does not work like that:
//! every vehicle's offloaded pipeline lands on a shared cloud box and
//! every uplink crosses a shared WAP. This module runs N
//! [`VehicleSession`]s interleaved on one virtual clock against those
//! shared contention resources:
//!
//! * a [`CloudScheduler`] multiplexing a remote pool's hardware
//!   threads across tenants — per-tenant queueing delay inflates the
//!   remote processing times the profiler measures, so Algorithm 1's
//!   placement genuinely reacts to cloud saturation, and
//! * a [`SharedMedium`] splitting uplink airtime between concurrent
//!   senders, so a crowded WAP stretches scan delivery.
//!
//! **Regional sharding.** One WAP and one cloud box stop scaling long
//! before 1000 vehicles, so a [`RegionTopology`] partitions the
//! warehouse floorplan into `regions` stripes: each region owns its
//! own WAP ([`SharedMedium`]) and is served by one of `cloud_pools`
//! scheduler replica pools (pool `p` is homed in region `p`; region
//! `r` is served by pool `r % cloud_pools`). Vehicles are assigned to
//! regions by floorplan stall position — stalls are filled in vehicle
//! order, stripe by stripe, so region blocks are contiguous in vehicle
//! id. A vehicle whose serving pool is homed in another region pays a
//! deterministic **WAN hop** on every admission
//! ([`VehicleSession::set_wan_hop`]).
//!
//! **Parallel execution.** Regions sharing a scheduler pool form a
//! *pool group*; groups share no mutable state, so each lockstep round
//! fans the groups across [`ParallelExecutor`] workers and barriers at
//! the round boundary. Within a group, regions (and their vehicles)
//! step in vehicle order. Reports are therefore byte-identical for
//! any [`FleetConfig::threads`] value — the round barrier plus the
//! previous-window census (below) make intra-round order immaterial,
//! and inter-group order never exists.
//!
//! **Lockstep determinism.** The driver advances every running session
//! through control cycle `k` before any session starts cycle `k+1`.
//! Both contention models bill window `w` against the *previous*
//! window's census, which is final once a round begins — so results
//! are independent of the order sessions are stepped within a round,
//! and a fleet run is exactly reproducible from its seed.
//!
//! **Fleet-of-one identity.** Vehicle 1 runs the base config verbatim,
//! [`VehicleSession::join_fleet`] draws no randomness, and a lone
//! tenant is charged exactly zero by both models — so a size-1 fleet's
//! [`MissionReport`] is byte-identical (same [`MissionReport::fingerprint`])
//! to [`crate::mission::run`] on the same config. The same collapse
//! holds one level up: a 1-region topology builds exactly one
//! scheduler and one medium, emits no region events, and steps
//! sessions in vehicle order — byte-identical to the unsharded path.

use crate::mission::{MissionConfig, MissionReport};
use crate::session::{VehicleSession, CONTROL_PERIOD};
use lgv_net::fault::CloudFaultSchedule;
use lgv_net::shared::{MediumStats, SharedMedium};
pub use lgv_sim::cloud::ElasticConfig;
use lgv_sim::cloud::{CloudScheduler, CloudStats};
use lgv_slam::pool::ParallelExecutor;
use lgv_trace::{TraceEvent, Tracer};
use lgv_types::prelude::*;

/// Golden-ratio mixing constant for deriving per-vehicle seeds.
const SEED_STRIDE: u64 = 0x9e37_79b9_7f4a_7c15;

/// How the fleet's shared cloud tier is provisioned (each regional
/// pool is provisioned independently under the same policy).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CloudPolicy {
    /// The paper's fixed box: one replica, every admission charged
    /// independently.
    #[default]
    Fixed,
    /// FogROS-style elastic provisioning: same-stage batching and
    /// replica autoscaling per the given [`ElasticConfig`].
    Elastic(ElasticConfig),
}

/// How the fleet's floorplan is sharded into contention domains.
///
/// The warehouse is divided into `regions` equal stripes; vehicle
/// stalls are filled in vehicle order, stripe by stripe, so the
/// vehicles of region `r` are a contiguous id block. Each region owns
/// its own WAP ([`SharedMedium`]); scheduler pools may be scarcer than
/// regions (`cloud_pools ≤ regions`), in which case region `r` is
/// served by pool `r % cloud_pools` and pays `wan_hop` per admission
/// whenever that pool is homed in a different region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionTopology {
    /// Floorplan stripes, each with its own WAP (clamped to
    /// `[1, fleet size]` at run time).
    pub regions: u32,
    /// Cloud scheduler pools (clamped to `[1, regions]`); pool `p` is
    /// homed in region `p`.
    pub cloud_pools: u32,
    /// Deterministic one-way surcharge a vehicle pays per remote
    /// admission when its serving pool is homed in another region.
    pub wan_hop: Duration,
}

impl Default for RegionTopology {
    fn default() -> Self {
        RegionTopology::single()
    }
}

impl RegionTopology {
    /// Default WAN hop between non-colocated regions (a metro
    /// round-trip's worth of one-way latency).
    pub const DEFAULT_WAN_HOP: Duration = Duration::from_millis(10);

    /// The unsharded topology: one region, one pool, no WAN — the
    /// exact pre-regional fleet.
    pub fn single() -> Self {
        RegionTopology {
            regions: 1,
            cloud_pools: 1,
            wan_hop: Duration::ZERO,
        }
    }

    /// `regions` stripes, one scheduler pool per region (no
    /// cross-region traffic, maximal parallelism).
    pub fn sharded(regions: u32) -> Self {
        RegionTopology {
            regions: regions.max(1),
            cloud_pools: regions.max(1),
            wan_hop: Duration::ZERO,
        }
    }

    /// Serve the regions from only `pools` scheduler pools; regions
    /// without a home pool reach theirs over the default WAN hop.
    pub fn with_cloud_pools(mut self, pools: u32) -> Self {
        self.cloud_pools = pools.max(1);
        if self.cloud_pools < self.regions && self.wan_hop == Duration::ZERO {
            self.wan_hop = Self::DEFAULT_WAN_HOP;
        }
        self
    }

    /// Override the per-admission WAN surcharge.
    pub fn with_wan_hop(mut self, hop: Duration) -> Self {
        self.wan_hop = hop;
        self
    }

    /// Effective `(regions, pools)` for a fleet of `size` vehicles:
    /// regions clamp to `[1, size]`, pools to `[1, regions]`.
    fn effective(&self, size: u64) -> (u32, u32) {
        let regions = u64::from(self.regions.max(1)).min(size).max(1) as u32;
        let pools = self.cloud_pools.clamp(1, regions);
        (regions, pools)
    }

    /// The region whose floorplan stripe holds vehicle `vehicle`'s
    /// stall (1-based vehicle id, balanced contiguous blocks).
    pub fn region_of(&self, vehicle: u64, size: u64) -> u32 {
        let size = size.max(1);
        let (regions, _) = self.effective(size);
        ((vehicle.clamp(1, size) - 1) * u64::from(regions) / size) as u32
    }
}

/// A fleet of identical missions differing only in their seeds.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The mission every vehicle runs. Vehicle 1 uses it verbatim
    /// (including its seed); later vehicles derive their seeds.
    pub base: MissionConfig,
    /// Number of vehicles (clamped to ≥ 1).
    pub size: usize,
    /// Provisioning policy for the shared cloud (ignored when the
    /// deployment does not offload). Applied per regional pool.
    pub cloud: CloudPolicy,
    /// Deterministic cloud-tier fault schedule (replica crashes,
    /// stragglers, failed scale-ups). Empty by default, which leaves
    /// the scheduler's fast path untouched. Applied to every pool.
    pub cloud_faults: CloudFaultSchedule,
    /// Regional sharding of the contention domains (defaults to the
    /// unsharded single region).
    pub topology: RegionTopology,
    /// Worker threads for fanning pool groups across a
    /// [`ParallelExecutor`] each round. Reports are byte-identical
    /// for any value (≥ 1); 1 (the default) steps everything inline.
    pub threads: usize,
}

impl FleetConfig {
    /// A fleet of `size` vehicles running `base` against the fixed
    /// (paper) cloud, unsharded.
    pub fn new(base: MissionConfig, size: usize) -> Self {
        FleetConfig {
            base,
            size,
            cloud: CloudPolicy::Fixed,
            cloud_faults: CloudFaultSchedule::none(),
            topology: RegionTopology::single(),
            threads: 1,
        }
    }

    /// The same fleet against an elastically provisioned cloud.
    pub fn with_cloud(mut self, cloud: CloudPolicy) -> Self {
        self.cloud = cloud;
        self
    }

    /// The same fleet with a cloud-tier fault schedule injected into
    /// every regional scheduler pool.
    pub fn with_cloud_faults(mut self, faults: CloudFaultSchedule) -> Self {
        self.cloud_faults = faults;
        self
    }

    /// The same fleet sharded per `topology`.
    pub fn with_topology(mut self, topology: RegionTopology) -> Self {
        self.topology = topology;
        self
    }

    /// The same fleet stepped by `threads` workers (per-round fan-out
    /// over pool groups; does not change any report byte).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The same fleet with every vehicle running `policy` as its
    /// offload decider (see [`crate::policy`]). Per-vehicle seeds
    /// still stride, so learned policies explore independently.
    pub fn with_policy(mut self, policy: crate::policy::PolicyKind) -> Self {
        self.base.policy = policy;
        self
    }

    /// The configuration vehicle `vehicle` (1-based) runs: the base
    /// config with a seed derived by golden-ratio mixing for vehicles
    /// past the first. Vehicle 1 gets the base verbatim, which is what
    /// makes the size-1 fleet byte-identical to a single-vehicle run.
    pub fn vehicle_config(&self, vehicle: u64) -> MissionConfig {
        let mut cfg = self.base.clone();
        if vehicle > 1 {
            cfg.seed = self.base.seed ^ vehicle.wrapping_mul(SEED_STRIDE);
        }
        cfg
    }
}

/// Per-region outcome of a sharded fleet run.
#[derive(Debug, Clone)]
pub struct RegionStats {
    /// Region index (floorplan stripe).
    pub region: u32,
    /// Vehicles whose stalls fall in this stripe.
    pub vehicles: u64,
    /// Scheduler pool serving the region (`region % cloud_pools`).
    pub cloud_pool: u32,
    /// Whether that pool is homed in another region (admissions pay
    /// the WAN hop).
    pub remote_pool: bool,
    /// Cross-region admissions charged by this region's vehicles.
    pub wan_crossings: u64,
    /// Total WAN surcharge those admissions paid.
    pub wan_extra: Duration,
    /// This region's WAP counters (None when the deployment does not
    /// offload).
    pub uplink: Option<MediumStats>,
    /// The ledger of the pool homed in this region (None for regions
    /// that are not a pool home, or when nothing offloads).
    pub cloud: Option<CloudStats>,
}

/// Outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-vehicle mission reports, in vehicle-id order (vehicle `i`
    /// is at index `i − 1`).
    pub vehicles: Vec<MissionReport>,
    /// Cloud admission counters aggregated across every regional pool
    /// (None when the deployment does not offload). For a 1-region
    /// fleet this is the lone pool's ledger verbatim.
    pub cloud: Option<CloudStats>,
    /// Access-point contention counters aggregated across every
    /// regional WAP (None when the deployment does not offload).
    pub uplink: Option<MediumStats>,
    /// Per-region breakdown, in region order (always at least one
    /// entry; a single entry for unsharded fleets).
    pub regions: Vec<RegionStats>,
    /// Lockstep rounds driven (= the slowest vehicle's cycle count).
    pub rounds: u64,
}

impl FleetReport {
    /// Vehicles that completed their mission.
    pub fn completed(&self) -> usize {
        self.vehicles.iter().filter(|v| v.completed).count()
    }

    /// Mean mission time across vehicles (seconds).
    pub fn mean_mission_secs(&self) -> f64 {
        let n = self.vehicles.len().max(1) as f64;
        self.vehicles
            .iter()
            .map(|v| v.time.total().as_secs_f64())
            .sum::<f64>()
            / n
    }

    /// Mean energy across vehicles (joules).
    pub fn mean_energy_j(&self) -> f64 {
        let n = self.vehicles.len().max(1) as f64;
        self.vehicles
            .iter()
            .map(|v| v.energy.total_joules())
            .sum::<f64>()
            / n
    }

    /// Total cross-region admissions across the fleet.
    pub fn wan_crossings(&self) -> u64 {
        self.regions.iter().map(|r| r.wan_crossings).sum()
    }
}

/// One region's runtime state: its sessions (in vehicle order) and
/// their running flags.
struct RegionRt {
    index: u32,
    sessions: Vec<(u64, VehicleSession)>,
    running: Vec<bool>,
}

/// Regions served by one scheduler pool. The unit of parallelism: a
/// pool's census is mutated only by its own group's worker, so groups
/// share no state and any fan-out of groups over threads is
/// deterministic.
struct PoolGroup {
    regions: Vec<RegionRt>,
}

impl PoolGroup {
    /// Step every running session one control cycle, regions (and
    /// vehicles within them) in vehicle order. Returns whether any
    /// session is still running.
    fn step_round(&mut self) -> bool {
        let mut any = false;
        for region in &mut self.regions {
            for (i, (_, s)) in region.sessions.iter_mut().enumerate() {
                if region.running[i] {
                    region.running[i] = s.step();
                    any |= region.running[i];
                }
            }
        }
        any
    }
}

/// Run a fleet without tracing.
pub fn run_fleet(cfg: FleetConfig) -> FleetReport {
    run_fleet_traced(cfg, Tracer::disabled())
}

/// Run a fleet with every session's events tagged by vehicle id
/// through a [`Tracer::for_vehicle`] clone per session, all sharing
/// `tracer`'s sink and virtual clock.
pub fn run_fleet_traced(cfg: FleetConfig, tracer: Tracer) -> FleetReport {
    let n = cfg.size.max(1) as u64;
    let (regions, pools) = cfg.topology.effective(n);
    let offloaded = cfg.base.deployment.offloaded();
    let wan_hop = cfg.topology.wan_hop;

    // One scheduler per pool, one WAP per region. A 1-region topology
    // builds exactly what the unsharded path did: one of each.
    let schedulers: Vec<CloudScheduler> = if offloaded {
        let hw = cfg.base.deployment.remote_platform().hw_threads;
        (0..pools)
            .map(|_| {
                let sched = match cfg.cloud {
                    CloudPolicy::Fixed => CloudScheduler::new(hw, CONTROL_PERIOD),
                    CloudPolicy::Elastic(ec) => CloudScheduler::elastic(hw, CONTROL_PERIOD, ec),
                };
                sched.set_faults(cfg.cloud_faults.clone());
                sched
            })
            .collect()
    } else {
        Vec::new()
    };
    let media: Vec<SharedMedium> = if offloaded {
        (0..regions)
            .map(|_| SharedMedium::new(CONTROL_PERIOD))
            .collect()
    } else {
        Vec::new()
    };

    // Sessions are created, enrolled, and begun in vehicle order on
    // the calling thread, so RNG forking and mission_start emission
    // order match the unsharded path exactly.
    let mut groups: Vec<PoolGroup> = (0..pools)
        .map(|_| PoolGroup {
            regions: Vec::new(),
        })
        .collect();
    for r in 0..regions {
        groups[(r % pools) as usize].regions.push(RegionRt {
            index: r,
            sessions: Vec::new(),
            running: Vec::new(),
        });
    }
    for v in 1..=n {
        let region = cfg.topology.region_of(v, n);
        let pool = region % pools;
        let crossing = pool != region;
        let vt = tracer.for_vehicle(v);
        if offloaded && regions > 1 {
            vt.emit_at(
                0,
                TraceEvent::RegionAssign {
                    region,
                    cloud_pool: pool,
                    wan: crossing && wan_hop > Duration::ZERO,
                },
            );
        }
        let mut s = VehicleSession::new(cfg.vehicle_config(v), vt);
        s.join_fleet(
            VehicleId(v),
            schedulers.get(pool as usize).cloned(),
            media.get(region as usize).cloned(),
        );
        if offloaded && crossing {
            s.set_wan_hop(region, pool, wan_hop);
        }
        let group = &mut groups[(pool % pools) as usize];
        let rt = group
            .regions
            .iter_mut()
            .find(|rt| rt.index == region)
            .expect("every region is in its pool's group");
        rt.sessions.push((v, s));
        rt.running.push(true);
    }
    for g in groups.iter_mut() {
        for region in &mut g.regions {
            for (_, s) in region.sessions.iter_mut() {
                s.begin();
            }
        }
    }

    // Lockstep rounds: every running session finishes cycle k before
    // any session starts cycle k+1. Pool groups fan out across the
    // executor's workers; the run_chunks return is the round barrier.
    // Sessions drop out individually as their missions end (goal,
    // battery, or time cap).
    let executor = ParallelExecutor::new(cfg.threads.max(1).min(groups.len().max(1)));
    let mut rounds = 0u64;
    loop {
        let _prof = lgv_trace::prof::scope("fleet/round");
        rounds += 1;
        let any: Vec<bool> = executor.run_chunks(&mut groups, |chunk| {
            let mut any = false;
            for g in chunk {
                any |= g.step_round();
            }
            any
        });
        if !any.into_iter().any(|a| a) {
            break;
        }
    }

    // Per-region stats, then the fleet-wide aggregates. Region blocks
    // are contiguous in vehicle id, so flattening groups region-first
    // and sorting by vehicle restores report order.
    let mut region_stats: Vec<RegionStats> = Vec::with_capacity(regions as usize);
    let mut vehicles: Vec<(u64, MissionReport)> = Vec::with_capacity(n as usize);
    let mut regions_rt: Vec<RegionRt> = groups.into_iter().flat_map(|g| g.regions).collect();
    regions_rt.sort_by_key(|rt| rt.index);
    for rt in regions_rt {
        let pool = rt.index % pools;
        let mut crossings = 0u64;
        let mut extra = Duration::ZERO;
        for (_, s) in &rt.sessions {
            let (c, e) = s.wan_stats();
            crossings += c;
            extra += e;
        }
        region_stats.push(RegionStats {
            region: rt.index,
            vehicles: rt.sessions.len() as u64,
            cloud_pool: pool,
            remote_pool: pool != rt.index,
            wan_crossings: crossings,
            wan_extra: extra,
            uplink: media.get(rt.index as usize).map(|m| m.stats()),
            cloud: (pool == rt.index)
                .then(|| schedulers.get(pool as usize).map(|c| c.stats()))
                .flatten(),
        });
        vehicles.extend(rt.sessions.into_iter().map(|(v, s)| (v, s.finish())));
    }
    vehicles.sort_by_key(|(v, _)| *v);

    let cloud = (!schedulers.is_empty())
        .then(|| CloudStats::merged(&schedulers.iter().map(|c| c.stats()).collect::<Vec<_>>()));
    let uplink = (!media.is_empty()).then(|| {
        let mut total = media[0].stats();
        for m in &media[1..] {
            total.absorb(&m.stats());
        }
        total
    });

    FleetReport {
        vehicles: vehicles.into_iter().map(|(_, r)| r).collect(),
        cloud,
        uplink,
        regions: region_stats,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;
    use crate::mission::Workload;

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let cfg = FleetConfig::new(
            MissionConfig::compact_lab(Deployment::edge(), Workload::Navigation),
            4,
        );
        assert_eq!(cfg.vehicle_config(1).seed, cfg.base.seed);
        let seeds: Vec<u64> = (1..=4).map(|v| cfg.vehicle_config(v).seed).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(
            seeds,
            (1..=4)
                .map(|v| cfg.vehicle_config(v).seed)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn local_fleet_has_no_shared_resources() {
        let base = MissionConfig::compact_lab(Deployment::local(), Workload::Navigation);
        let report = run_fleet(FleetConfig::new(base, 2));
        assert_eq!(report.vehicles.len(), 2);
        assert!(report.cloud.is_none());
        assert!(report.uplink.is_none());
        assert_eq!(report.regions.len(), 1);
        assert!(report.regions[0].uplink.is_none());
        assert!(report.rounds > 0);
        assert_eq!(report.completed(), 2, "both local vehicles should finish");
    }

    #[test]
    fn contention_appears_beyond_one_vehicle() {
        let base = MissionConfig::compact_lab(Deployment::edge_8t(), Workload::Navigation);
        let report = run_fleet(FleetConfig::new(base, 2));
        let cloud = report.cloud.expect("offloaded fleet tracks the cloud");
        assert!(cloud.admissions > 0);
        assert!(
            cloud.delayed > 0,
            "two tenants on one edge box should queue"
        );
        let uplink = report.uplink.expect("offloaded fleet tracks the WAP");
        assert!(uplink.contended_sends > 0, "two uplinks should contend");
        assert!(report.mean_mission_secs() > 0.0);
        assert!(report.mean_energy_j() > 0.0);
    }

    #[test]
    fn floorplan_stalls_assign_balanced_contiguous_regions() {
        let topo = RegionTopology::sharded(4);
        // 10 vehicles over 4 stripes: blocks of 3/2/3/2 — balanced
        // (±1) and contiguous in vehicle id.
        let assignment: Vec<u32> = (1..=10).map(|v| topo.region_of(v, 10)).collect();
        assert_eq!(assignment, vec![0, 0, 0, 1, 1, 2, 2, 2, 3, 3]);
        // Clamps: more regions than vehicles degrades to one region
        // per vehicle; region indices never exceed the fleet.
        assert_eq!(RegionTopology::sharded(8).region_of(3, 3), 2);
        assert_eq!(RegionTopology::single().region_of(7, 10), 0);
    }

    #[test]
    fn topology_effective_clamps_pools_and_regions() {
        let topo = RegionTopology::sharded(6).with_cloud_pools(9);
        assert_eq!(topo.effective(100), (6, 6));
        assert_eq!(topo.effective(4), (4, 4));
        let scarce = RegionTopology::sharded(6).with_cloud_pools(2);
        assert_eq!(scarce.effective(100), (6, 2));
        // Scarce pools imply a WAN hop unless explicitly overridden.
        assert_eq!(scarce.wan_hop, RegionTopology::DEFAULT_WAN_HOP);
        assert_eq!(
            RegionTopology::sharded(4)
                .with_wan_hop(Duration::ZERO)
                .wan_hop,
            Duration::ZERO
        );
    }
}
