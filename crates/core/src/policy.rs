//! The pluggable offload-decision layer.
//!
//! The paper's Algorithm 1 ([`OffloadStrategy`]) migrates nodes off a
//! fixed threshold rule, but offloading is really a *sequential
//! decision problem* (Chinchali et al., "Network Offloading Policies
//! for Cloud Robotics"): the best placement depends on context that
//! changes every cycle, and alternative deciders — whole-graph
//! placement search (muPlacer-style) or learned policies — can beat
//! the static heuristic. This module extracts the decision into a
//! trait so implementations can be raced head-to-head on identical
//! inputs:
//!
//! * [`Algorithm1Policy`] — the paper's strategy behind the trait,
//!   **byte-identical** to calling [`OffloadStrategy::decide`]
//!   directly (the default; every pre-existing benchmark checksum is
//!   pinned to it);
//! * [`GlobalPlacementPolicy`] — greedy state-space search over the
//!   full node→tier assignment vector, scored by the analytical
//!   model's predicted cycle time and vehicle energy (the muPlacer
//!   idea from SNIPPETS.md applied to the paper's node DAG);
//! * [`BanditPolicy`] — a tabular contextual ε-greedy bandit over
//!   discretized profiler features, trained online from the same
//!   measurements the Profiler already records. No ML dependencies;
//!   fully deterministic in virtual time.
//!
//! Every policy consumes one [`PolicyContext`] per decision tick: the
//! profiler features (per-node local/remote times, RTT, bandwidth,
//! signal direction), energy-model parameters, fault/recovery state,
//! **and Algorithm 2's verdict** ([`NetVerdict`]) — so the network
//! controller's invoke-local override is visible to every policy
//! instead of silently bypassing them. The policy returns a full
//! [`PlacementPlan`]; the session applies the network verdict and
//! dispatches work exactly as before.
//!
//! See `docs/POLICY.md` for the trait contract and how to add a
//! policy.

use crate::classify::Classification;
use crate::mission::MissionConfig;
use crate::model::{Goal, VelocityModel};
use crate::netctl::{NetDecision, NetVerdict};
use crate::strategy::{OffloadStrategy, PinPolicy, PlacementPlan};
use lgv_types::prelude::*;
use std::collections::HashMap;
use std::fmt;

/// Which [`OffloadPolicy`] implementation a mission runs. Threaded
/// through [`MissionConfig::policy`] (and thus `FleetConfig`), so solo
/// missions and fleets build decisions through one factory path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// The paper's Algorithm 1 (the default — reproduces the
    /// historical behaviour byte-for-byte).
    #[default]
    Algorithm1,
    /// Greedy whole-graph placement search scored by the analytical
    /// model (muPlacer-style).
    GlobalPlacement,
    /// Tabular contextual ε-greedy bandit over discretized profiler
    /// features, trained online.
    Bandit,
}

impl PolicyKind {
    /// Stable lowercase label (used in reports and trace events).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Algorithm1 => "algorithm1",
            PolicyKind::GlobalPlacement => "global",
            PolicyKind::Bandit => "bandit",
        }
    }

    /// All implementations, race order.
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::Algorithm1,
        PolicyKind::GlobalPlacement,
        PolicyKind::Bandit,
    ];
}

/// Energy-model parameters the policies score placements with
/// (paper Eq. 1a–1d, reduced to the two terms a placement actually
/// moves: on-board dynamic compute energy and radio transmit power).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyParams {
    /// Joules per Gcycle executed on the vehicle's embedded computer
    /// (Eq. 1c dynamic energy at the Turtlebot3 operating point).
    pub local_j_per_gcycle: f64,
    /// Radio transmit power while any node is offloaded (W).
    pub tx_power_w: f64,
}

/// Per-node processing-time and demand estimates: the latest live
/// profiler measurement where one exists, the static Table II profile
/// priced on the platform models otherwise (same cold-start fallback
/// the session's makespan estimator uses). Indexed by
/// [`NodeKind::ALL`] position.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeEstimates {
    local: [Duration; NodeKind::ALL.len()],
    remote: [Duration; NodeKind::ALL.len()],
    /// Cycle demand (Gcycles/s) per node; zero for nodes the current
    /// workload never activates.
    demand: [f64; NodeKind::ALL.len()],
}

fn node_index(kind: NodeKind) -> usize {
    NodeKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("NodeKind::ALL covers every kind")
}

impl NodeEstimates {
    /// Estimated processing time of `kind` on the vehicle.
    pub fn local(&self, kind: NodeKind) -> Duration {
        self.local[node_index(kind)]
    }

    /// Estimated processing time of `kind` on the remote tier
    /// (admission queueing and WAN surcharges included when the
    /// estimate is a live measurement).
    pub fn remote(&self, kind: NodeKind) -> Duration {
        self.remote[node_index(kind)]
    }

    /// Cycle demand of `kind` in Gcycles/s (zero when the workload
    /// never activates it).
    pub fn demand_gcps(&self, kind: NodeKind) -> f64 {
        self.demand[node_index(kind)]
    }

    /// Set the local-time estimate for `kind`.
    pub fn set_local(&mut self, kind: NodeKind, t: Duration) {
        self.local[node_index(kind)] = t;
    }

    /// Set the remote-time estimate for `kind`.
    pub fn set_remote(&mut self, kind: NodeKind, t: Duration) {
        self.remote[node_index(kind)] = t;
    }

    /// Set the demand estimate for `kind` (Gcycles/s).
    pub fn set_demand(&mut self, kind: NodeKind, gcps: f64) {
        self.demand[node_index(kind)] = gcps;
    }
}

/// Everything an [`OffloadPolicy`] may condition one decision on: the
/// profiler features, the energy model, the fault/recovery state, and
/// Algorithm 2's verdict for this cycle.
#[derive(Debug, Clone, Copy)]
pub struct PolicyContext<'a> {
    /// The T1–T4 workload classification.
    pub class: &'a Classification,
    /// `T_l^v`: measured VDP makespan with the VDP local.
    pub local_vdp: Duration,
    /// `T_c`: measured VDP makespan with T3 offloaded, network
    /// latency included.
    pub cloud_vdp: Duration,
    /// Latest RTT measurement (the static 20 ms WAN prior until the
    /// first echo returns).
    pub rtt: Duration,
    /// Packet bandwidth `r_t` (packets/s).
    pub bandwidth: f64,
    /// Signal direction `d_t` (positive = approaching the WAP).
    pub direction: f64,
    /// Whether offloading is currently active.
    pub remote_enabled: bool,
    /// Whether freshly-migrated nodes still lack their state.
    pub cold_state: bool,
    /// Consecutive failed offload attempts currently backing off
    /// (recovery state; resets once a re-offload sticks).
    pub offload_failures: u64,
    /// Algorithm 2's verdict for this cycle — visible to every policy
    /// instead of bypassing the decision layer. The session still
    /// applies the verdict (switching, migration, cold rebuild);
    /// policies read it to avoid proposing placements the network
    /// controller is about to tear down.
    pub net: NetVerdict,
    /// Per-node local/remote time and demand estimates.
    pub nodes: NodeEstimates,
    /// Energy-model parameters for placement scoring.
    pub energy: EnergyParams,
}

/// A pluggable offload decider: one full [`PlacementPlan`] per
/// decision tick from one [`PolicyContext`].
///
/// Implementations must be deterministic in virtual time: the same
/// sequence of `(now, ctx)` calls must produce the same sequence of
/// plans (seeded randomness is fine, wall clock is not). Stateful
/// learners update themselves inside [`OffloadPolicy::decide`] — the
/// context carries the measured outcome of the previous tick's plan.
pub trait OffloadPolicy: fmt::Debug + Send {
    /// Stable lowercase policy name (trace events, reports).
    fn name(&self) -> &'static str;

    /// Decide this tick's placement.
    fn decide(&mut self, now: SimTime, ctx: &PolicyContext<'_>) -> PlacementPlan;

    /// Clone into a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn OffloadPolicy>;
}

impl Clone for Box<dyn OffloadPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Build the policy a mission configuration asks for — the single
/// factory path used by solo sessions and fleet drivers alike.
pub fn for_mission(cfg: &MissionConfig) -> Box<dyn OffloadPolicy> {
    build(cfg.policy, cfg.goal, cfg.velocity, cfg.pins, cfg.seed)
}

/// Build a policy from explicit parameters. `seed` feeds the bandit's
/// exploration stream; the other policies ignore it.
pub fn build(
    kind: PolicyKind,
    goal: Goal,
    velocity: VelocityModel,
    pins: PinPolicy,
    seed: u64,
) -> Box<dyn OffloadPolicy> {
    match kind {
        PolicyKind::Algorithm1 => Box::new(Algorithm1Policy::new(OffloadStrategy {
            goal,
            velocity,
            pins,
        })),
        PolicyKind::GlobalPlacement => Box::new(GlobalPlacementPolicy::new(goal, velocity, pins)),
        PolicyKind::Bandit => Box::new(BanditPolicy::new(goal, velocity, pins, seed)),
    }
}

/// The placement a session starts from before its first decision
/// tick: offloaded deployments optimistically submit the whole ECN
/// set, all-local deployments submit nothing; the expected makespan
/// and velocity are the historical conservative startup constants.
pub fn initial_plan(class: &Classification, offloaded: bool) -> PlacementPlan {
    PlacementPlan {
        remote: if offloaded { class.ecn } else { NodeSet::EMPTY },
        expected_vdp: Duration::from_millis(600),
        max_velocity: 0.15,
    }
}

/// Predicted `(VDP cycle time (s), vehicle energy rate (W))` of a
/// placement assignment under the context's estimates — the scoring
/// function shared by the search and bandit policies.
///
/// Cycle time is the analytical VDP makespan: Σ VDP-node times at
/// their assigned tier, plus one RTT when any VDP node is remote.
/// Energy rate is the on-board dynamic compute power of every node
/// kept local plus the radio transmit power when anything is remote.
pub fn predict(remote: NodeSet, ctx: &PolicyContext<'_>) -> (f64, f64) {
    let mut cycle = Duration::ZERO;
    let mut vdp_remote = false;
    let mut any_remote = false;
    let mut local_gcps = 0.0;
    for kind in NodeKind::ALL {
        let is_remote = remote.contains(kind);
        if is_remote {
            any_remote = true;
        } else {
            local_gcps += ctx.nodes.demand_gcps(kind);
        }
        if kind.on_vdp() {
            if is_remote {
                vdp_remote = true;
                cycle += ctx.nodes.remote(kind);
            } else {
                cycle += ctx.nodes.local(kind);
            }
        }
    }
    if vdp_remote {
        cycle += ctx.rtt;
    }
    let mut watts = local_gcps * ctx.energy.local_j_per_gcycle;
    if any_remote {
        watts += ctx.energy.tx_power_w;
    }
    (cycle.as_secs_f64(), watts)
}

/// Compare two `(cycle, watts)` scores under a goal: MCT minimizes
/// cycle time (energy breaks ties), EC minimizes energy (cycle time
/// breaks ties).
fn better(goal: Goal, a: (f64, f64), b: (f64, f64)) -> bool {
    let (ka, kb) = match goal {
        Goal::MissionTime => ((a.0, a.1), (b.0, b.1)),
        Goal::Energy => ((a.1, a.0), (b.1, b.0)),
    };
    ka < kb
}

// ---------------------------------------------------------------------------
// Algorithm 1 behind the trait
// ---------------------------------------------------------------------------

/// The paper's Algorithm 1 ported behind [`OffloadPolicy`].
///
/// Byte-identical to calling [`OffloadStrategy::decide`] with the
/// context's two makespans: it reads nothing else from the context
/// (in particular it ignores [`PolicyContext::net`], because the
/// historical pipeline evaluated the strategy before the network
/// controller), so every pre-existing benchmark checksum is preserved.
#[derive(Debug, Clone)]
pub struct Algorithm1Policy {
    strategy: OffloadStrategy,
}

impl Algorithm1Policy {
    /// Wrap an Algorithm 1 strategy.
    pub fn new(strategy: OffloadStrategy) -> Self {
        Algorithm1Policy { strategy }
    }
}

impl OffloadPolicy for Algorithm1Policy {
    fn name(&self) -> &'static str {
        "algorithm1"
    }

    fn decide(&mut self, _now: SimTime, ctx: &PolicyContext<'_>) -> PlacementPlan {
        self.strategy
            .decide(ctx.class, ctx.local_vdp, ctx.cloud_vdp)
    }

    fn clone_box(&self) -> Box<dyn OffloadPolicy> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Global placement search
// ---------------------------------------------------------------------------

/// Greedy whole-graph placement search (muPlacer-style).
///
/// Instead of Algorithm 1's one-rule migration of the T3 block, this
/// searches the full node→tier assignment vector: starting from
/// all-on-vehicle, it repeatedly offloads whichever single node most
/// improves the goal objective under the analytical model ([`predict`])
/// and stops at a local optimum. With the per-node estimates carrying
/// live admission queueing and WAN surcharges, a saturated cloud
/// genuinely prices itself out of the assignment.
///
/// The velocity mux (actuation) and pinned safety-critical nodes are
/// never candidates; when Algorithm 2's verdict this cycle is
/// invoke-local the search yields the all-vehicle assignment instead
/// of proposing placements the network controller is tearing down.
#[derive(Debug, Clone)]
pub struct GlobalPlacementPolicy {
    goal: Goal,
    velocity: VelocityModel,
    pins: PinPolicy,
}

impl GlobalPlacementPolicy {
    /// Search policy for a goal with the given Eq. 2c parameters and
    /// safety pins.
    pub fn new(goal: Goal, velocity: VelocityModel, pins: PinPolicy) -> Self {
        GlobalPlacementPolicy {
            goal,
            velocity,
            pins,
        }
    }

    fn plan_for(&self, remote: NodeSet, ctx: &PolicyContext<'_>) -> PlacementPlan {
        let (cycle, _) = predict(remote, ctx);
        let expected_vdp = Duration::from_secs_f64(cycle);
        PlacementPlan {
            remote,
            expected_vdp,
            max_velocity: self.velocity.vmax(expected_vdp),
        }
    }
}

impl OffloadPolicy for GlobalPlacementPolicy {
    fn name(&self) -> &'static str {
        "global"
    }

    fn decide(&mut self, _now: SimTime, ctx: &PolicyContext<'_>) -> PlacementPlan {
        // Respect the network controller: an invoke-local verdict
        // (rule, watchdog, or heartbeat) means remote execution is
        // being torn down this very cycle.
        if ctx.net.decision == NetDecision::InvokeLocal {
            return self.plan_for(NodeSet::EMPTY, ctx);
        }
        // Candidate moves: profiled nodes that may leave the vehicle.
        // The mux is actuation (the engine always runs it on-board)
        // and pinned nodes are contractually local.
        let candidates: Vec<NodeKind> = NodeKind::ALL
            .into_iter()
            .filter(|k| {
                *k != NodeKind::VelocityMux
                    && ctx.nodes.demand_gcps(*k) > 0.0
                    && !self.pins.pinned_local.contains(*k)
            })
            .collect();

        let mut assignment = NodeSet::EMPTY;
        let mut score = predict(assignment, ctx);
        loop {
            let mut best: Option<(NodeKind, (f64, f64))> = None;
            for &k in &candidates {
                if assignment.contains(k) {
                    continue;
                }
                let mut next = assignment;
                next.insert(k);
                let s = predict(next, ctx);
                if better(self.goal, s, score) && best.is_none_or(|(_, b)| better(self.goal, s, b))
                {
                    best = Some((k, s));
                }
            }
            match best {
                Some((k, s)) => {
                    assignment.insert(k);
                    score = s;
                }
                None => break,
            }
        }
        self.plan_for(assignment, ctx)
    }

    fn clone_box(&self) -> Box<dyn OffloadPolicy> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Tabular contextual bandit
// ---------------------------------------------------------------------------

/// Arms of the bandit: the three placements the execution engine can
/// meaningfully distinguish (see `docs/POLICY.md`).
const BANDIT_ARMS: usize = 3;

/// Exploration rate of the ε-greedy rule.
const BANDIT_EPSILON: f64 = 0.12;

/// A tabular contextual ε-greedy bandit over discretized profiler
/// features (Chinchali et al.: offloading as a sequential decision
/// problem).
///
/// * **Context** — bandwidth bucket (relative to Algorithm 2's
///   4 pkt/s threshold), signal-direction sign (with the ±0.02
///   deadband), RTT bucket, and cold-state flag: 72 cells.
/// * **Arms** — keep everything local; offload the full ECN set;
///   offload only the off-critical-path ECNs (T3 stays home).
/// * **Reward** — the *measured* outcome of the previous tick's arm,
///   read from the next context: negative VDP makespan under the MCT
///   goal, negative predicted vehicle power under EC. Updates are
///   incremental means per `(context, arm)` cell.
///
/// All randomness comes from one seeded [`SimRng`], and decisions
/// happen on the virtual-time decision tick, so a run is bit-for-bit
/// reproducible and fleet determinism is preserved.
#[derive(Debug, Clone)]
pub struct BanditPolicy {
    goal: Goal,
    velocity: VelocityModel,
    pins: PinPolicy,
    rng: SimRng,
    /// `(context, arm) → (mean reward, pulls)`.
    q: HashMap<(u8, u8), (f64, u64)>,
    /// Previous tick's `(context, arm, vdp_went_remote)` awaiting its
    /// observed reward.
    last: Option<(u8, u8, bool)>,
}

impl BanditPolicy {
    /// Bandit for a goal with the given Eq. 2c parameters, safety
    /// pins, and exploration seed.
    pub fn new(goal: Goal, velocity: VelocityModel, pins: PinPolicy, seed: u64) -> Self {
        BanditPolicy {
            goal,
            velocity,
            pins,
            rng: SimRng::seed_from_u64(seed ^ 0xBA_4D17),
            q: HashMap::new(),
            last: None,
        }
    }

    /// Discretize the profiler features into a context cell.
    fn context_id(ctx: &PolicyContext<'_>) -> u8 {
        let bw = if ctx.bandwidth < 2.0 {
            0
        } else if ctx.bandwidth < 4.0 {
            1
        } else if ctx.bandwidth < 6.0 {
            2
        } else {
            3
        };
        let dir = if ctx.direction < -0.02 {
            0
        } else if ctx.direction > 0.02 {
            2
        } else {
            1
        };
        let rtt_ms = ctx.rtt.as_secs_f64() * 1e3;
        let rtt = if rtt_ms < 25.0 {
            0
        } else if rtt_ms < 100.0 {
            1
        } else {
            2
        };
        let cold = u8::from(ctx.cold_state);
        bw * 18 + dir * 6 + rtt * 2 + cold
    }

    /// The placement an arm stands for (pins applied).
    fn arm_remote(&self, arm: u8, class: &Classification) -> NodeSet {
        let remote = match arm {
            0 => NodeSet::EMPTY,
            1 => class.ecn,
            _ => class.ecn.difference(class.t3),
        };
        remote.difference(self.pins.pinned_local)
    }

    /// Observed reward of the previous arm, measured by this tick's
    /// profiler features.
    fn reward(&self, vdp_was_remote: bool, ctx: &PolicyContext<'_>) -> f64 {
        match self.goal {
            Goal::MissionTime => {
                let makespan = if vdp_was_remote && ctx.remote_enabled {
                    ctx.cloud_vdp
                } else {
                    ctx.local_vdp
                };
                -makespan.as_secs_f64()
            }
            Goal::Energy => {
                let remote = if vdp_was_remote {
                    ctx.class.ecn.difference(self.pins.pinned_local)
                } else {
                    NodeSet::EMPTY
                };
                let (_, watts) = predict(remote, ctx);
                -watts
            }
        }
    }
}

impl OffloadPolicy for BanditPolicy {
    fn name(&self) -> &'static str {
        "bandit"
    }

    fn decide(&mut self, _now: SimTime, ctx: &PolicyContext<'_>) -> PlacementPlan {
        // Learn: credit the previous arm with its measured outcome.
        if let Some((c, a, vdp_remote)) = self.last.take() {
            let r = self.reward(vdp_remote, ctx);
            let cell = self.q.entry((c, a)).or_insert((0.0, 0));
            cell.1 += 1;
            cell.0 += (r - cell.0) / cell.1 as f64;
        }

        let c = Self::context_id(ctx);
        // Respect Algorithm 2: an invoke-local verdict forces the
        // local arm this tick (the switch is happening regardless);
        // the forced pull still gets credited next tick.
        let arm = if ctx.net.decision == NetDecision::InvokeLocal {
            0
        } else {
            // Untried arms first (deterministic order), then ε-greedy.
            let untried = (0..BANDIT_ARMS as u8).find(|a| !self.q.contains_key(&(c, *a)));
            match untried {
                Some(a) => a,
                None if self.rng.uniform() < BANDIT_EPSILON => self.rng.index(BANDIT_ARMS) as u8,
                None => (0..BANDIT_ARMS as u8)
                    .max_by(|a, b| {
                        let qa = self.q[&(c, *a)].0;
                        let qb = self.q[&(c, *b)].0;
                        qa.partial_cmp(&qb).expect("rewards are finite").then(
                            // Lower arm id wins ties for determinism.
                            b.cmp(a),
                        )
                    })
                    .expect("arms are non-empty"),
            }
        };

        let remote = self.arm_remote(arm, ctx.class);
        // Expected makespan mirrors the engine: the cloud estimate
        // only rules when the whole T3 block actually goes remote.
        let mut expected_vdp = if remote.contains(NodeKind::PathTracking) {
            ctx.cloud_vdp
        } else {
            ctx.local_vdp
        };
        if remote.intersection(ctx.class.t3) != ctx.class.t3 {
            expected_vdp = expected_vdp.max(ctx.local_vdp);
        }
        self.last = Some((c, arm, remote.contains(NodeKind::PathTracking)));
        PlacementPlan {
            remote,
            expected_vdp,
            max_velocity: self.velocity.vmax(expected_vdp),
        }
    }

    fn clone_box(&self) -> Box<dyn OffloadPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, table2_with_map, table2_without_map};
    use crate::netctl::SwitchCause;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn keep_verdict() -> NetVerdict {
        NetVerdict {
            decision: NetDecision::Keep,
            cause: SwitchCause::Rule,
            backoff_armed: None,
        }
    }

    /// Static-priced estimates roughly shaped like the lab workload:
    /// heavy nodes slow locally, fast remotely.
    fn estimates(class_profiles: &[crate::classify::NodeProfile]) -> NodeEstimates {
        let mut n = NodeEstimates::default();
        for p in class_profiles {
            let g = p.work.total_cycles() / 1e9;
            n.set_demand(p.kind, p.cycles_per_sec() / 1e9);
            // ~3.4 Gcycle/s vehicle vs ~40 Gcycle/s remote.
            n.set_local(p.kind, Duration::from_secs_f64(g / 3.4));
            n.set_remote(p.kind, Duration::from_secs_f64(g / 40.0));
        }
        n
    }

    fn ctx<'a>(
        class: &'a Classification,
        local_vdp: Duration,
        cloud_vdp: Duration,
        nodes: NodeEstimates,
    ) -> PolicyContext<'a> {
        PolicyContext {
            class,
            local_vdp,
            cloud_vdp,
            rtt: ms(20),
            bandwidth: 5.0,
            direction: 0.1,
            remote_enabled: true,
            cold_state: false,
            offload_failures: 0,
            net: keep_verdict(),
            nodes,
            energy: EnergyParams {
                local_j_per_gcycle: 1.2,
                tx_power_w: 1.3,
            },
        }
    }

    #[test]
    fn algorithm1_policy_is_byte_identical_to_the_strategy() {
        // Sweep both goals, both classifications, both pin policies,
        // and a makespan grid covering zero-RTT-fast-cloud, equal
        // times, and slow-cloud regimes: the plan behind the trait
        // must equal OffloadStrategy::decide exactly.
        let classes = [
            classify(&table2_with_map()),
            classify(&table2_without_map()),
        ];
        let profiles = [table2_with_map(), table2_without_map()];
        for (class, profile) in classes.iter().zip(&profiles) {
            for goal in [Goal::MissionTime, Goal::Energy] {
                for pins in [PinPolicy::none(), PinPolicy::safety_critical()] {
                    let strategy = OffloadStrategy {
                        goal,
                        velocity: VelocityModel::default(),
                        pins,
                    };
                    let mut policy = Algorithm1Policy::new(strategy.clone());
                    for local in [0u64, 60, 100, 600, 900] {
                        for cloud in [0u64, 60, 100, 600, 900] {
                            let c = ctx(class, ms(local), ms(cloud), estimates(profile));
                            let expect = strategy.decide(class, ms(local), ms(cloud));
                            let got = policy.decide(SimTime::EPOCH, &c);
                            assert_eq!(got, expect, "local={local} cloud={cloud} {goal:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn zero_rtt_makes_the_cloud_win_under_mct() {
        // Edge case: a zero-RTT link (wired lab bench) prices the
        // cloud VDP below local, so T3 stays remote and the expected
        // makespan is the cloud one.
        let class = classify(&table2_with_map());
        let mut p = Algorithm1Policy::new(OffloadStrategy::new(Goal::MissionTime));
        let mut c = ctx(&class, ms(600), ms(40), estimates(&table2_with_map()));
        c.rtt = Duration::ZERO;
        let plan = p.decide(SimTime::EPOCH, &c);
        assert!(plan.remote.contains(NodeKind::PathTracking));
        assert_eq!(plan.expected_vdp, ms(40));
    }

    #[test]
    fn equal_local_and_remote_times_prefer_offloading() {
        // Tc == Tl^v is not "Tc > Tl^v": Algorithm 1 keeps T3 remote.
        let class = classify(&table2_with_map());
        let mut p = Algorithm1Policy::new(OffloadStrategy::new(Goal::MissionTime));
        let c = ctx(&class, ms(100), ms(100), estimates(&table2_with_map()));
        let plan = p.decide(SimTime::EPOCH, &c);
        assert!(plan.remote.contains(NodeKind::PathTracking));
        assert_eq!(plan.expected_vdp, ms(100));
    }

    #[test]
    fn pinned_safety_nodes_never_leave_any_policy() {
        let class = classify(&table2_with_map());
        let pins = PinPolicy::safety_critical();
        let nodes = estimates(&table2_with_map());
        let c = ctx(&class, ms(600), ms(60), nodes);
        for kind in PolicyKind::ALL {
            let mut p = build(kind, Goal::MissionTime, VelocityModel::default(), pins, 7);
            for tick in 0..20 {
                let plan = p.decide(SimTime::EPOCH + Duration::from_millis(200 * tick), &c);
                assert!(
                    !plan.remote.contains(NodeKind::PathTracking)
                        && !plan.remote.contains(NodeKind::VelocityMux),
                    "{} tick {tick} leaked a pinned node",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn initial_plan_reproduces_the_session_startup_constants() {
        let class = classify(&table2_with_map());
        let plan = initial_plan(&class, true);
        assert_eq!(plan.remote, class.ecn);
        assert_eq!(plan.expected_vdp, ms(600));
        assert_eq!(plan.max_velocity, 0.15);
        let plan = initial_plan(&class, false);
        assert!(plan.remote.is_empty());
    }

    #[test]
    fn global_search_offloads_the_heavy_nodes_on_a_good_network() {
        let class = classify(&table2_without_map());
        let nodes = estimates(&table2_without_map());
        let mut p = GlobalPlacementPolicy::new(
            Goal::MissionTime,
            VelocityModel::default(),
            PinPolicy::none(),
        );
        let c = ctx(&class, ms(600), ms(60), nodes);
        let plan = p.decide(SimTime::EPOCH, &c);
        // The heavy T3 pair must go remote; the mux never does.
        assert!(plan.remote.contains(NodeKind::CostmapGen));
        assert!(plan.remote.contains(NodeKind::PathTracking));
        assert!(!plan.remote.contains(NodeKind::VelocityMux));
        // Predicted makespan beats staying local.
        assert!(plan.expected_vdp < ms(600));
    }

    #[test]
    fn global_search_stays_home_when_the_network_prices_it_out() {
        let class = classify(&table2_with_map());
        let mut nodes = estimates(&table2_with_map());
        // A congested cloud: remote activations slower than local.
        for p in table2_with_map() {
            nodes.set_remote(p.kind, Duration::from_secs_f64(p.work.total_cycles() / 1e9));
        }
        let mut p = GlobalPlacementPolicy::new(
            Goal::MissionTime,
            VelocityModel::default(),
            PinPolicy::none(),
        );
        let mut c = ctx(&class, ms(300), ms(900), nodes);
        c.rtt = ms(400);
        let plan = p.decide(SimTime::EPOCH, &c);
        assert!(plan.remote.is_empty(), "remote = {:?}", plan.remote);
    }

    #[test]
    fn global_search_under_energy_goal_offloads_despite_rtt() {
        // EC goal: shipping the heavy compute off-board wins on watts
        // even when the RTT makes the cycle slower.
        let class = classify(&table2_without_map());
        let nodes = estimates(&table2_without_map());
        let mut p =
            GlobalPlacementPolicy::new(Goal::Energy, VelocityModel::default(), PinPolicy::none());
        let mut c = ctx(&class, ms(600), ms(650), nodes);
        c.rtt = ms(300);
        let plan = p.decide(SimTime::EPOCH, &c);
        assert!(plan.remote.contains(NodeKind::Slam));
        assert!(plan.remote.contains(NodeKind::CostmapGen));
    }

    #[test]
    fn policies_respect_the_network_controllers_invoke_local() {
        // Satellite: Algorithm 2's override is visible to the layer —
        // the search and the bandit both yield all-local when the
        // verdict says the placement is being torn down. Algorithm 1
        // deliberately ignores it (historical byte-identity).
        let class = classify(&table2_with_map());
        let nodes = estimates(&table2_with_map());
        let mut c = ctx(&class, ms(600), ms(60), nodes);
        c.net = NetVerdict {
            decision: NetDecision::InvokeLocal,
            cause: SwitchCause::HeartbeatMiss,
            backoff_armed: None,
        };
        let mut global = GlobalPlacementPolicy::new(
            Goal::MissionTime,
            VelocityModel::default(),
            PinPolicy::none(),
        );
        assert!(global.decide(SimTime::EPOCH, &c).remote.is_empty());
        let mut bandit = BanditPolicy::new(
            Goal::MissionTime,
            VelocityModel::default(),
            PinPolicy::none(),
            7,
        );
        assert!(bandit.decide(SimTime::EPOCH, &c).remote.is_empty());
        let mut alg1 = Algorithm1Policy::new(OffloadStrategy::new(Goal::MissionTime));
        assert!(alg1
            .decide(SimTime::EPOCH, &c)
            .remote
            .contains(NodeKind::PathTracking));
    }

    #[test]
    fn bandit_is_deterministic_per_seed() {
        let class = classify(&table2_with_map());
        let nodes = estimates(&table2_with_map());
        let run = |seed: u64| {
            let mut p = BanditPolicy::new(
                Goal::MissionTime,
                VelocityModel::default(),
                PinPolicy::none(),
                seed,
            );
            (0..200)
                .map(|k| {
                    // Alternate between a good and a bad network so
                    // several context cells get visited.
                    let (l, cl, bw) = if k % 3 == 0 {
                        (600, 900, 1.0)
                    } else {
                        (600, 60, 5.5)
                    };
                    let mut c = ctx(&class, ms(l), ms(cl), nodes);
                    c.bandwidth = bw;
                    p.decide(SimTime::EPOCH + Duration::from_millis(200 * k), &c)
                        .remote
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed must replay identically");
    }

    #[test]
    fn bandit_learns_to_offload_when_the_cloud_is_fast() {
        let class = classify(&table2_with_map());
        let nodes = estimates(&table2_with_map());
        let mut p = BanditPolicy::new(
            Goal::MissionTime,
            VelocityModel::default(),
            PinPolicy::none(),
            3,
        );
        let c = ctx(&class, ms(600), ms(60), nodes);
        let mut offloaded = 0;
        let total = 400;
        for k in 0..total {
            let plan = p.decide(SimTime::EPOCH + Duration::from_millis(200 * k), &c);
            if plan.remote.contains(NodeKind::PathTracking) {
                offloaded += 1;
            }
        }
        // ε-greedy with ε = 0.12 over 3 arms: the greedy arm must
        // dominate once the cells are primed.
        assert!(
            offloaded as f64 > 0.75 * total as f64,
            "offloaded only {offloaded}/{total} ticks"
        );
    }

    #[test]
    fn bandit_learns_to_stay_home_when_the_cloud_is_slow() {
        let class = classify(&table2_with_map());
        let nodes = estimates(&table2_with_map());
        let mut p = BanditPolicy::new(
            Goal::MissionTime,
            VelocityModel::default(),
            PinPolicy::none(),
            3,
        );
        let mut c = ctx(&class, ms(300), ms(900), nodes);
        c.bandwidth = 1.5;
        let mut local = 0;
        let total = 400;
        for k in 0..total {
            let plan = p.decide(SimTime::EPOCH + Duration::from_millis(200 * k), &c);
            if !plan.remote.contains(NodeKind::PathTracking) {
                local += 1;
            }
        }
        assert!(
            local as f64 > 0.75 * total as f64,
            "stayed local only {local}/{total} ticks"
        );
    }

    #[test]
    fn netctl_boundary_bandwidth_at_threshold_fires_neither_branch() {
        // Algorithm 2's inequalities are strict: r_t exactly at the
        // 4 pkt/s threshold switches in *neither* direction, whatever
        // the signal direction says — and the resulting Keep verdict
        // leaves the decision layer free to keep its own optimum.
        use crate::netctl::{NetControl, NetControlConfig, NetInputs};
        let t = SimTime::EPOCH + Duration::from_secs(3); // past warmup
        for (remote_active, direction) in [(true, -0.5), (false, 0.5)] {
            let mut nc = NetControl::new(NetControlConfig::default());
            let inputs = |bandwidth| NetInputs {
                bandwidth,
                direction,
                remote_active,
                since_downlink: Some(Duration::ZERO),
                radio_weak: false,
            };
            nc.evaluate(SimTime::EPOCH, inputs(4.0)); // start the clock
            let v = nc.evaluate(t, inputs(4.0));
            assert_eq!(
                v.decision,
                NetDecision::Keep,
                "r_t == threshold must keep (remote_active={remote_active})"
            );
            // Just past the threshold the matching branch fires.
            let v = nc.evaluate(t + ms(1), inputs(if remote_active { 3.99 } else { 4.01 }));
            let expect = if remote_active {
                NetDecision::InvokeLocal
            } else {
                NetDecision::InvokeRemote
            };
            assert_eq!(v.decision, expect, "past threshold must switch");
        }
    }

    #[test]
    fn netctl_boundary_direction_deadband_is_inclusive() {
        // |d_t| == 0.02 sits *inside* the deadband (strict
        // inequalities again): the robot counts as "not moving" and
        // neither branch fires; one tick beyond it does.
        use crate::netctl::{NetControl, NetControlConfig, NetInputs};
        let t = SimTime::EPOCH + Duration::from_secs(3);
        for (remote_active, bandwidth, away) in [(true, 3.0, true), (false, 5.0, false)] {
            let sign = if away { -1.0 } else { 1.0 };
            let inputs = |direction| NetInputs {
                bandwidth,
                direction,
                remote_active,
                since_downlink: Some(Duration::ZERO),
                radio_weak: false,
            };
            let mut nc = NetControl::new(NetControlConfig::default());
            nc.evaluate(SimTime::EPOCH, inputs(0.0));
            let v = nc.evaluate(t, inputs(sign * 0.02));
            assert_eq!(v.decision, NetDecision::Keep, "deadband edge must keep");
            let v = nc.evaluate(t + ms(1), inputs(sign * 0.021));
            let expect = if remote_active {
                NetDecision::InvokeLocal
            } else {
                NetDecision::InvokeRemote
            };
            assert_eq!(v.decision, expect, "outside the deadband must switch");
        }
    }

    #[test]
    fn netctl_boundary_dwell_verdict_flows_into_the_policies() {
        // Hysteresis dwell: after a switch the rule is suppressed for
        // min_dwell (1.5 s) exclusive — and while suppressed, the Keep
        // verdict reaches the decision layer, so the search policy is
        // free to propose its optimum rather than being forced local.
        use crate::netctl::{NetControl, NetControlConfig, NetInputs};
        let t0 = SimTime::EPOCH + Duration::from_secs(3);
        let inputs = || NetInputs {
            bandwidth: 3.0,
            direction: -0.5,
            remote_active: true,
            since_downlink: Some(Duration::ZERO),
            radio_weak: false,
        };
        let mut nc = NetControl::new(NetControlConfig::default());
        nc.evaluate(SimTime::EPOCH, inputs());
        let v = nc.evaluate(t0, inputs());
        assert_eq!(v.decision, NetDecision::InvokeLocal);

        // One nanosecond short of the dwell: still suppressed.
        let dwell = NetControlConfig::default().min_dwell;
        let held = nc.evaluate(t0 + (dwell - Duration::from_nanos(1)), inputs());
        assert_eq!(held.decision, NetDecision::Keep, "inside dwell must keep");
        // The suppressed verdict feeds the layer: the search policy
        // still proposes its own optimum under Keep...
        let class = classify(&table2_with_map());
        let nodes = estimates(&table2_with_map());
        let mut c = ctx(&class, ms(600), ms(60), nodes);
        c.net = held;
        let mut global = GlobalPlacementPolicy::new(
            Goal::MissionTime,
            VelocityModel::default(),
            PinPolicy::none(),
        );
        assert!(!global.decide(SimTime::EPOCH, &c).remote.is_empty());

        // ...and at exactly the dwell the rule fires again, which the
        // policies then respect (all-local).
        let fired = nc.evaluate(t0 + dwell, inputs());
        assert_eq!(fired.decision, NetDecision::InvokeLocal, "dwell expiry");
        c.net = fired;
        assert!(global.decide(SimTime::EPOCH, &c).remote.is_empty());
    }

    #[test]
    fn predict_prices_the_rtt_only_when_the_vdp_leaves() {
        let class = classify(&table2_without_map());
        let nodes = estimates(&table2_without_map());
        let mut c = ctx(&class, ms(600), ms(60), nodes);
        c.rtt = ms(50);
        let (all_local, watts_local) = predict(NodeSet::EMPTY, &c);
        // SLAM-only offload: off the VDP, so no RTT term on the cycle.
        let (slam_only, watts_slam) = predict(NodeSet::single(NodeKind::Slam), &c);
        assert!((all_local - slam_only).abs() < 1e-12);
        // But the radio now transmits — and the on-board demand fell.
        assert!(watts_slam < watts_local + c.energy.tx_power_w);
        // Offloading the T3 pair adds the RTT to the cycle.
        let t3 = NodeSet::from_iter([NodeKind::CostmapGen, NodeKind::PathTracking]);
        let (t3_cycle, _) = predict(t3, &c);
        let remote_sum: f64 = [NodeKind::CostmapGen, NodeKind::PathTracking]
            .iter()
            .map(|k| c.nodes.remote(*k).as_secs_f64())
            .sum::<f64>()
            + c.nodes.local(NodeKind::VelocityMux).as_secs_f64();
        assert!((t3_cycle - (remote_sum + 0.05)).abs() < 1e-9);
    }
}
