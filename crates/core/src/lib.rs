//! # lgv-offload
//!
//! The paper's primary contribution: a practical, adaptive
//! cloud-offloading framework for Low-cost Ground Vehicle workloads.
//!
//! * [`model`] — the analytical model of §III: energy (Eq. 1a–1d) and
//!   mission-completion time (Eq. 2a–2c), including the
//!   obstacle-avoidance maximum velocity `velocityOA`.
//! * [`mod@classify`] — bottleneck identification (§IV-A): Energy-Critical
//!   Nodes, the Velocity-Dependent Path, and the T1–T4 quadrants of
//!   Fig. 4.
//! * [`strategy`] — Algorithm 1: the fine-grained migration policy for
//!   the EC (energy) and MCT (mission-completion-time) goals, with the
//!   safety-critical pinning extension of §IX.
//! * [`policy`] — the pluggable decision layer: the [`policy::OffloadPolicy`]
//!   trait plus three raced implementations (Algorithm 1 behind the
//!   trait, greedy global placement search, tabular contextual
//!   bandit). See `docs/POLICY.md`.
//! * [`netctl`] — Algorithm 2: offload network-quality control from
//!   packet bandwidth + signal direction (and the latency-only
//!   baseline it replaces, for the ablation).
//! * [`profiler`] — the Profiler thread of §VII: per-node processing
//!   times, RTT, and the VDP makespan.
//! * [`deploy`] — the five evaluation deployments of §VIII (local /
//!   gateway / gateway+8T / cloud / cloud+12T).
//! * [`recovery`] — the failure-recovery policy: rebuild horizon,
//!   heartbeat timeout, re-offload backoff, checkpoint cadence, and
//!   degraded-mode fidelity, all in one [`RecoveryConfig`].
//! * [`mission`] — end-to-end virtual-time mission runner for the two
//!   standard workloads (Navigation with a map, Exploration without),
//!   wiring the whole stack together: simulated vehicle + sensors,
//!   middleware, network, remote platforms, energy ledger, and the
//!   runtime Controller applying both algorithms.
//! * [`session`] — one vehicle's complete runtime wiring packaged as a
//!   steppable [`VehicleSession`], so N instances can be interleaved
//!   on one virtual clock.
//! * [`fleet`] — the multi-tenant fleet driver: N sessions in lockstep
//!   against a shared cloud admission scheduler and a shared-spectrum
//!   access point.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod classify;
pub mod controller;
pub mod deploy;
pub mod fleet;
pub mod governor;
pub mod migration;
pub mod mission;
pub mod model;
pub mod netctl;
pub mod policy;
pub mod profiler;
pub mod recovery;
pub mod session;
pub mod strategy;

pub use classify::{classify, Classification, NodeProfile};
pub use controller::{ControlDecision, ControlInputs, Controller, ControllerConfig};
pub use deploy::Deployment;
pub use fleet::{run_fleet, run_fleet_traced, FleetConfig, FleetReport};
pub use governor::{GovernorConfig, ThreadGovernor};
pub use migration::{MigrationManager, MigrationTicket};
pub use mission::{MissionConfig, MissionReport, Workload};
pub use model::{max_velocity_oa, Goal, VelocityModel};
pub use netctl::{NetControl, NetControlConfig, NetDecision};
pub use policy::{
    Algorithm1Policy, BanditPolicy, EnergyParams, GlobalPlacementPolicy, NodeEstimates,
    OffloadPolicy, PolicyContext, PolicyKind,
};
pub use profiler::Profiler;
pub use recovery::{DegradedConfig, RecoveryConfig};
pub use session::VehicleSession;
pub use strategy::{OffloadStrategy, PlacementPlan};
