//! The analytical model (paper §III).
//!
//! Energy (Eq. 1a–1d) is implemented by `lgv_sim::power` and
//! integrated by `lgv_sim::energy`; this module owns the *time* side:
//! Eq. 2a–2c, in particular the obstacle-avoidance maximum velocity
//!
//! ```text
//! v_max = a_max · ( sqrt(t_p² + 2d/a_max) − t_p )        (Eq. 2c)
//! ```
//!
//! where `t_p` is the VDP processing time (local + cloud + network,
//! Eq. 2b), `a_max` the acceleration limit and `d` the required
//! stopping distance. The faster the pipeline reacts, the faster the
//! vehicle may safely drive — the quantitative heart of the paper.

use lgv_types::prelude::*;
use serde::{Deserialize, Serialize};

/// The developer-selected optimization goal of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Goal {
    /// Reduce total energy consumption (EC).
    Energy,
    /// Shorten mission completion time (MCT).
    MissionTime,
}

/// Eq. 2c: the maximum safe velocity for a pipeline reaction time of
/// `tp` seconds, acceleration limit `a_max` (m/s²), and stopping
/// distance `d` (m).
pub fn max_velocity_oa(tp_secs: f64, a_max: f64, d: f64) -> f64 {
    if a_max <= 0.0 || d <= 0.0 {
        return 0.0;
    }
    let tp = tp_secs.max(0.0);
    a_max * ((tp * tp + 2.0 * d / a_max).sqrt() - tp)
}

/// Velocity model: Eq. 2c plus the vehicle's hard velocity cap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VelocityModel {
    /// Maximum acceleration `a_max` (m/s²).
    pub a_max: f64,
    /// Required stopping distance `d` (m).
    pub stop_distance: f64,
    /// Hardware velocity cap (m/s).
    pub hw_cap: f64,
}

impl Default for VelocityModel {
    fn default() -> Self {
        // Tuned so a local-compute VDP time of ≈ 0.6 s yields the
        // paper's ≈ 0.18 m/s baseline and a well-offloaded ≈ 40 ms
        // pipeline reaches ≈ 0.7 m/s (the 4–5× of Fig. 12).
        VelocityModel {
            a_max: 3.0,
            stop_distance: 0.12,
            hw_cap: 1.0,
        }
    }
}

impl VelocityModel {
    /// `velocityOA(T_c)` of Algorithm 1: the capped Eq. 2c velocity.
    ///
    /// ```
    /// use lgv_offload::model::VelocityModel;
    /// use lgv_types::Duration;
    ///
    /// let m = VelocityModel::default();
    /// let slow_pipeline = m.vmax(Duration::from_millis(600)); // local compute
    /// let fast_pipeline = m.vmax(Duration::from_millis(40));  // offloaded
    /// assert!(fast_pipeline > 3.0 * slow_pipeline);
    /// ```
    pub fn vmax(&self, vdp_makespan: Duration) -> f64 {
        max_velocity_oa(vdp_makespan.as_secs_f64(), self.a_max, self.stop_distance).min(self.hw_cap)
    }
}

/// Decomposition of mission completion time (Eq. 2a): `T = T_s + T_m`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Standby time: the vehicle waits on computation.
    pub standby: Duration,
    /// Moving time.
    pub moving: Duration,
}

impl TimeBreakdown {
    /// Total mission time.
    pub fn total(&self) -> Duration {
        self.standby + self.moving
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_processing_time_gives_kinematic_limit() {
        // tp = 0: v = sqrt(2·a·d).
        let v = max_velocity_oa(0.0, 3.0, 0.08);
        assert!((v - (2.0f64 * 3.0 * 0.08).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn velocity_decreases_with_processing_time() {
        let mut prev = f64::INFINITY;
        for tp in [0.0, 0.05, 0.1, 0.3, 0.6, 1.2] {
            let v = max_velocity_oa(tp, 3.0, 0.08);
            assert!(v < prev, "vmax must strictly decrease");
            assert!(v > 0.0);
            prev = v;
        }
    }

    #[test]
    fn velocity_increases_with_stopping_distance() {
        assert!(max_velocity_oa(0.2, 3.0, 0.2) > max_velocity_oa(0.2, 3.0, 0.05));
    }

    #[test]
    fn degenerate_parameters_give_zero() {
        assert_eq!(max_velocity_oa(0.1, 0.0, 0.1), 0.0);
        assert_eq!(max_velocity_oa(0.1, 3.0, 0.0), 0.0);
        // Negative tp treated as zero.
        let v = max_velocity_oa(-5.0, 3.0, 0.08);
        assert_eq!(v, max_velocity_oa(0.0, 3.0, 0.08));
    }

    #[test]
    fn paper_fig12_velocity_band() {
        // Local VDP ≈ 0.6 s → ≈ 0.13 m/s; offloaded ≈ 40 ms → ≈ 0.6 m/s:
        // the 4–5× increase of Fig. 12.
        let m = VelocityModel::default();
        let local = m.vmax(Duration::from_millis(600));
        let offloaded = m.vmax(Duration::from_millis(40));
        assert!((0.08..0.2).contains(&local), "local vmax {local}");
        assert!(
            (0.5..0.8).contains(&offloaded),
            "offloaded vmax {offloaded}"
        );
        let ratio = offloaded / local;
        assert!((3.5..6.0).contains(&ratio), "velocity ratio {ratio}");
    }

    #[test]
    fn hw_cap_binds() {
        let m = VelocityModel {
            a_max: 100.0,
            stop_distance: 5.0,
            hw_cap: 1.0,
        };
        assert_eq!(m.vmax(Duration::ZERO), 1.0);
    }

    #[test]
    fn time_breakdown_sums() {
        let t = TimeBreakdown {
            standby: Duration::from_secs(3),
            moving: Duration::from_secs(42),
        };
        assert_eq!(t.total(), Duration::from_secs(45));
    }
}
