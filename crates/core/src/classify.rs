//! Bottleneck identification (paper §IV-A, Fig. 4).
//!
//! From per-node cycle profiles we derive:
//!
//! * **ECN** — Energy-Critical Nodes: nodes whose share of total
//!   cycle demand exceeds a threshold (Table II shows CostmapGen,
//!   PathTracking, and SLAM qualifying);
//! * **VDP** — the Velocity-Dependent Path: structurally CostmapGen →
//!   PathTracking → VelocityMux (Fig. 2);
//! * the four quadrants of Fig. 4:
//!   T1 = ECN ∖ VDP, T2 = VDP ∖ ECN, T3 = ECN ∩ VDP, T4 = neither.

use lgv_types::prelude::*;
use serde::{Deserialize, Serialize};

/// Measured profile of one node.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NodeProfile {
    /// Which node.
    pub kind: NodeKind,
    /// Cycle demand per activation.
    pub work: Work,
    /// Activation rate (Hz).
    pub rate_hz: f64,
}

impl NodeProfile {
    /// Average cycle demand per second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.work.total_cycles() * self.rate_hz
    }
}

/// The classification outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Classification {
    /// Energy-critical nodes.
    pub ecn: NodeSet,
    /// Velocity-dependent-path nodes.
    pub vdp: NodeSet,
    /// ECN not on the VDP (offload for energy only).
    pub t1: NodeSet,
    /// VDP non-ECN (keep local: no benefit from migration).
    pub t2: NodeSet,
    /// ECN on the VDP (offload for both energy and time).
    pub t3: NodeSet,
    /// Neither (lightweight, keep local).
    pub t4: NodeSet,
}

/// Fraction of total cycle demand above which a node is an ECN.
/// Table II: SLAM 62 %, PathTracking 23–60 %, CostmapGen 12–37 % all
/// qualify; PathPlanning (1–2 %), Exploration (1 %), laser
/// localization (1 %) do not.
pub const ECN_SHARE_THRESHOLD: f64 = 0.10;

/// Classify a workload from its node profiles.
pub fn classify(profiles: &[NodeProfile]) -> Classification {
    let total: f64 = profiles.iter().map(|p| p.cycles_per_sec()).sum();
    let mut ecn = NodeSet::EMPTY;
    let mut vdp = NodeSet::EMPTY;
    for p in profiles {
        if total > 0.0 && p.cycles_per_sec() / total >= ECN_SHARE_THRESHOLD {
            ecn.insert(p.kind);
        }
        if p.kind.on_vdp() {
            vdp.insert(p.kind);
        }
    }
    let all = NodeSet::from_iter(profiles.iter().map(|p| p.kind));
    Classification {
        ecn,
        vdp,
        t1: ecn.difference(vdp),
        t2: vdp.difference(ecn),
        t3: ecn.intersection(vdp),
        t4: all.difference(ecn.union(vdp)),
    }
}

/// The Table II "with a map" profile at its natural rates — useful as
/// a static default before live profiling has data.
pub fn table2_with_map() -> Vec<NodeProfile> {
    vec![
        NodeProfile {
            kind: NodeKind::Localization,
            work: Work::serial(0.028e9 / 5.0),
            rate_hz: 5.0,
        },
        NodeProfile {
            kind: NodeKind::CostmapGen,
            work: Work::with_parallel(0.017e9, 0.154e9, 512),
            rate_hz: 5.0,
        },
        NodeProfile {
            kind: NodeKind::PathPlanning,
            work: Work::serial(0.055e9),
            rate_hz: 1.0,
        },
        NodeProfile {
            kind: NodeKind::PathTracking,
            work: Work::with_parallel(0.002e9, 0.275e9, 1000),
            rate_hz: 5.0,
        },
        NodeProfile {
            kind: NodeKind::VelocityMux,
            work: Work::serial(5.0e3),
            rate_hz: 5.0,
        },
    ]
}

/// The Table II "without a map" profile (exploration workload).
pub fn table2_without_map() -> Vec<NodeProfile> {
    vec![
        NodeProfile {
            kind: NodeKind::Slam,
            work: Work::with_parallel(0.02e9, 0.645e9, 30),
            rate_hz: 5.0,
        },
        NodeProfile {
            kind: NodeKind::CostmapGen,
            work: Work::with_parallel(0.014e9, 0.123e9, 512),
            rate_hz: 5.0,
        },
        NodeProfile {
            kind: NodeKind::PathPlanning,
            work: Work::serial(0.052e9),
            rate_hz: 1.0,
        },
        NodeProfile {
            kind: NodeKind::Exploration,
            work: Work::serial(0.011e9),
            rate_hz: 1.0,
        },
        NodeProfile {
            kind: NodeKind::PathTracking,
            work: Work::with_parallel(0.002e9, 0.24e9, 1000),
            rate_hz: 5.0,
        },
        NodeProfile {
            kind: NodeKind::VelocityMux,
            work: Work::serial(5.0e3),
            rate_hz: 5.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_map_matches_paper_table2() {
        // Paper Table II: ECNs with a map are CostmapGen + PathTracking.
        let c = classify(&table2_with_map());
        assert!(c.ecn.contains(NodeKind::CostmapGen));
        assert!(c.ecn.contains(NodeKind::PathTracking));
        assert!(!c.ecn.contains(NodeKind::Localization));
        assert!(!c.ecn.contains(NodeKind::PathPlanning));
        assert_eq!(c.ecn.len(), 2);
    }

    #[test]
    fn without_map_matches_paper_table2() {
        // Paper: ECNs without a map are CostmapGen, PathTracking, SLAM.
        let c = classify(&table2_without_map());
        assert!(c.ecn.contains(NodeKind::Slam));
        assert!(c.ecn.contains(NodeKind::CostmapGen));
        assert!(c.ecn.contains(NodeKind::PathTracking));
        assert!(!c.ecn.contains(NodeKind::Exploration));
        assert_eq!(c.ecn.len(), 3);
    }

    #[test]
    fn quadrants_partition_correctly() {
        let c = classify(&table2_without_map());
        // T3 = ECN ∩ VDP = {CostmapGen, PathTracking}.
        assert!(c.t3.contains(NodeKind::CostmapGen));
        assert!(c.t3.contains(NodeKind::PathTracking));
        // T1 = ECN ∖ VDP = {SLAM}.
        assert_eq!(c.t1, NodeSet::single(NodeKind::Slam));
        // T2 = VDP ∖ ECN = {VelocityMux}.
        assert_eq!(c.t2, NodeSet::single(NodeKind::VelocityMux));
        // T4 = the light planning nodes.
        assert!(c.t4.contains(NodeKind::PathPlanning));
        assert!(c.t4.contains(NodeKind::Exploration));
        // Quadrants are disjoint and cover all profiled nodes.
        let union = c.t1.union(c.t2).union(c.t3).union(c.t4);
        assert_eq!(union.len(), 6);
        for pair in [
            c.t1.intersection(c.t2),
            c.t1.intersection(c.t3),
            c.t1.intersection(c.t4),
            c.t2.intersection(c.t3),
            c.t2.intersection(c.t4),
            c.t3.intersection(c.t4),
        ] {
            assert!(pair.is_empty());
        }
    }

    #[test]
    fn vdp_is_structural() {
        let c = classify(&table2_with_map());
        assert!(c.vdp.contains(NodeKind::CostmapGen));
        assert!(c.vdp.contains(NodeKind::PathTracking));
        assert!(c.vdp.contains(NodeKind::VelocityMux));
        assert!(!c.vdp.contains(NodeKind::PathPlanning));
    }

    #[test]
    fn empty_profile_is_all_empty() {
        let c = classify(&[]);
        assert!(c.ecn.is_empty());
        assert!(c.t1.is_empty() && c.t2.is_empty() && c.t3.is_empty() && c.t4.is_empty());
    }

    #[test]
    fn rate_matters_not_just_per_activation_cost() {
        // A heavy node activated rarely is not an ECN.
        let profiles = vec![
            NodeProfile {
                kind: NodeKind::PathPlanning,
                work: Work::serial(10e9),
                rate_hz: 0.001,
            },
            NodeProfile {
                kind: NodeKind::PathTracking,
                work: Work::serial(0.2e9),
                rate_hz: 5.0,
            },
        ];
        let c = classify(&profiles);
        assert!(!c.ecn.contains(NodeKind::PathPlanning));
        assert!(c.ecn.contains(NodeKind::PathTracking));
    }

    #[test]
    fn table2_profiles_have_expected_totals() {
        // Sanity: the static profiles reproduce the Gcycles/s of
        // Table II within rounding.
        let total_map: f64 = table2_with_map()
            .iter()
            .map(|p| p.cycles_per_sec())
            .sum::<f64>()
            / 1e9;
        assert!(
            (2.0..2.7).contains(&total_map),
            "with-map total {total_map}"
        );
        let total_nomap: f64 = table2_without_map()
            .iter()
            .map(|p| p.cycles_per_sec())
            .sum::<f64>()
            / 1e9;
        assert!(
            (4.4..5.5).contains(&total_nomap),
            "without-map total {total_nomap}"
        );
    }
}
