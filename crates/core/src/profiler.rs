//! The Profiler (paper §VII).
//!
//! Collects the four inputs Algorithms 1 and 2 consume:
//!
//! 1. per-node processing time (local nodes timed directly, remote
//!    nodes from the times piggybacked on downlink envelopes);
//! 2. network latency (RTT from echoed stamps);
//! 3. packet bandwidth (receive-rate meter);
//! 4. signal direction (WAP geometry from the internal world model).
//!
//! The derived quantity everything hinges on is the **VDP makespan**:
//! "the sum of received cloud processing time, subscribed local
//! processing time and RTT".

use lgv_trace::{MsgId, TraceEvent, Tracer};
use lgv_types::prelude::*;
use std::collections::HashMap;

/// Rolling per-node time statistics + network measurements.
///
/// ```
/// use lgv_offload::profiler::Profiler;
/// use lgv_types::prelude::*;
///
/// let mut p = Profiler::new();
/// p.record_local(NodeKind::CostmapGen, Duration::from_millis(240));
/// p.record_local(NodeKind::PathTracking, Duration::from_millis(400));
/// p.record_local(NodeKind::VelocityMux, Duration::from_millis(1));
/// // T_l^v: sum of the VDP nodes' local times, no RTT term.
/// assert_eq!(p.local_vdp_time(), Duration::from_millis(641));
///
/// // Offload the two heavy nodes: cloud times + RTT.
/// p.record_remote(NodeKind::CostmapGen, Duration::from_millis(14));
/// p.record_remote(NodeKind::PathTracking, Duration::from_millis(16));
/// p.record_rtt(Duration::from_millis(20));
/// let remote = NodeSet::from_iter([NodeKind::CostmapGen, NodeKind::PathTracking]);
/// assert_eq!(p.cloud_vdp_time(remote), Duration::from_millis(51));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    local_times: HashMap<NodeKind, Duration>,
    remote_times: HashMap<NodeKind, Duration>,
    rtt: Option<Duration>,
    bandwidth: f64,
    signal_direction: f64,
    tracer: Tracer,
}

impl Profiler {
    /// Fresh profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Route per-node processing-time samples to `tracer` (timestamps
    /// come from the tracer's shared virtual clock).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Record a local node's processing time.
    pub fn record_local(&mut self, node: NodeKind, time: Duration) {
        self.record_local_msg(node, time, MsgId::NONE);
    }

    /// Record a local node's processing time attributed to the bus
    /// message (lineage id) that triggered the computation.
    pub fn record_local_msg(&mut self, node: NodeKind, time: Duration, msg: MsgId) {
        self.tracer.emit_with(|| TraceEvent::ProfileSample {
            node: format!("{node:?}"),
            remote: false,
            nanos: time.as_nanos(),
            msg,
        });
        self.local_times.insert(node, time);
    }

    /// Record a remote node's processing time (piggybacked).
    pub fn record_remote(&mut self, node: NodeKind, time: Duration) {
        self.record_remote_msg(node, time, MsgId::NONE);
    }

    /// Record a remote node's processing time attributed to the bus
    /// message (lineage id) that triggered the computation.
    pub fn record_remote_msg(&mut self, node: NodeKind, time: Duration, msg: MsgId) {
        self.tracer.emit_with(|| TraceEvent::ProfileSample {
            node: format!("{node:?}"),
            remote: true,
            nanos: time.as_nanos(),
            msg,
        });
        self.remote_times.insert(node, time);
    }

    /// Record the latest RTT sample.
    pub fn record_rtt(&mut self, rtt: Duration) {
        self.rtt = Some(rtt);
    }

    /// Record the current packet bandwidth (packets/s).
    pub fn record_bandwidth(&mut self, pps: f64) {
        self.bandwidth = pps;
    }

    /// Record the current signal direction.
    pub fn record_signal_direction(&mut self, dir: f64) {
        self.signal_direction = dir;
    }

    /// Latest RTT (zero when never measured — e.g. all-local runs).
    pub fn rtt(&self) -> Duration {
        self.rtt.unwrap_or(Duration::ZERO)
    }

    /// Latest packet bandwidth (packets/s).
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Latest signal direction.
    pub fn signal_direction(&self) -> f64 {
        self.signal_direction
    }

    /// Last known processing time of a node under a given placement.
    pub fn node_time(&self, node: NodeKind, placement: Placement) -> Option<Duration> {
        match placement {
            Placement::Local => self.local_times.get(&node).copied(),
            Placement::Remote => self.remote_times.get(&node).copied(),
        }
    }

    /// The VDP makespan for a placement assignment: Σ VDP node times
    /// (+ RTT when any VDP node is remote). Nodes without data yet
    /// contribute zero (optimistic startup).
    pub fn vdp_makespan(&self, remote: NodeSet) -> Duration {
        let mut total = Duration::ZERO;
        let mut any_remote = false;
        for kind in NodeKind::ALL {
            if !kind.on_vdp() {
                continue;
            }
            let placement = if remote.contains(kind) {
                Placement::Remote
            } else {
                Placement::Local
            };
            if placement == Placement::Remote {
                any_remote = true;
            }
            if let Some(t) = self.node_time(kind, placement) {
                total += t;
            }
        }
        if any_remote {
            total += self.rtt();
        }
        total
    }

    /// `T_l^v`: the all-local VDP makespan.
    pub fn local_vdp_time(&self) -> Duration {
        self.vdp_makespan(NodeSet::EMPTY)
    }

    /// `T_c`: the VDP makespan with the given remote set (must include
    /// network latency — `vdp_makespan` adds the RTT).
    pub fn cloud_vdp_time(&self, remote: NodeSet) -> Duration {
        self.vdp_makespan(remote)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn vdp_remote() -> NodeSet {
        NodeSet::from_iter([NodeKind::CostmapGen, NodeKind::PathTracking])
    }

    #[test]
    fn local_makespan_sums_vdp_nodes_only() {
        let mut p = Profiler::new();
        p.record_local(NodeKind::CostmapGen, ms(240));
        p.record_local(NodeKind::PathTracking, ms(400));
        p.record_local(NodeKind::VelocityMux, ms(1));
        p.record_local(NodeKind::Slam, ms(2000)); // not on VDP
        assert_eq!(p.local_vdp_time(), ms(641));
    }

    #[test]
    fn cloud_makespan_adds_rtt() {
        let mut p = Profiler::new();
        p.record_local(NodeKind::VelocityMux, ms(1));
        p.record_remote(NodeKind::CostmapGen, ms(14));
        p.record_remote(NodeKind::PathTracking, ms(16));
        p.record_rtt(ms(20));
        assert_eq!(p.cloud_vdp_time(vdp_remote()), ms(51));
    }

    #[test]
    fn all_local_set_has_no_rtt_term() {
        let mut p = Profiler::new();
        p.record_local(NodeKind::CostmapGen, ms(100));
        p.record_local(NodeKind::PathTracking, ms(100));
        p.record_local(NodeKind::VelocityMux, ms(1));
        p.record_rtt(ms(500));
        assert_eq!(p.local_vdp_time(), ms(201));
    }

    #[test]
    fn missing_data_contributes_zero() {
        let p = Profiler::new();
        assert_eq!(p.local_vdp_time(), Duration::ZERO);
        assert_eq!(p.rtt(), Duration::ZERO);
    }

    #[test]
    fn placement_distinguishes_time_sources() {
        let mut p = Profiler::new();
        p.record_local(NodeKind::PathTracking, ms(400));
        p.record_remote(NodeKind::PathTracking, ms(15));
        assert_eq!(
            p.node_time(NodeKind::PathTracking, Placement::Local),
            Some(ms(400))
        );
        assert_eq!(
            p.node_time(NodeKind::PathTracking, Placement::Remote),
            Some(ms(15))
        );
        // MCT comparison: the same node, both worlds.
        assert!(p.cloud_vdp_time(vdp_remote()) < p.local_vdp_time());
    }

    #[test]
    fn network_measurements_roundtrip() {
        let mut p = Profiler::new();
        p.record_bandwidth(4.7);
        p.record_signal_direction(-0.3);
        assert_eq!(p.bandwidth(), 4.7);
        assert_eq!(p.signal_direction(), -0.3);
    }
}
