//! Algorithm 2: offload network quality control (paper §VI-A).
//!
//! Latency statistics lie over VDP-style UDP links (Fig. 7): packets
//! silently discarded at the sender never appear in any percentile,
//! so the tail looks healthy precisely while the link starves. The
//! paper's controller therefore watches two robust signals:
//!
//! * `r_t` — **packet bandwidth**: the receive rate over a window;
//!   with a fixed 5 Hz send rate it directly exposes loss;
//! * `d_t` — **signal direction**: whether the LGV is moving towards
//!   (+) or away from (−) the WAP, from its internal world model.
//!
//! The decision rule is exactly Algorithm 2, plus a dwell time so the
//! system cannot flap when hovering at the threshold:
//!
//! ```text
//! if r_t < threshold and d_t < 0 → invoke nodes locally
//! if r_t > threshold and d_t > 0 → invoke nodes remotely
//! otherwise                      → keep the current placement
//! ```
//!
//! A latency-threshold baseline ([`LatencyOnlyControl`]) is included
//! for the ablation benches — it demonstrates the Fig. 7/11 failure.

use lgv_types::prelude::*;
use serde::{Deserialize, Serialize};

/// What Algorithm 2 wants done with the currently-offloaded node set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetDecision {
    /// Migrate the offloaded nodes back onto the LGV.
    InvokeLocal,
    /// (Re-)offload the nodes to the remote server.
    InvokeRemote,
    /// No change.
    Keep,
}

/// Why a switch (or suppression) happened — the recovery paths need
/// to distinguish "the rule said so" from "the remote host is dead".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchCause {
    /// Algorithm 2's bandwidth × direction rule.
    Rule,
    /// Bandwidth starved past `outage_timeout` while offloaded — the
    /// radio is the problem.
    OutageWatchdog,
    /// The radio is healthy but the remote fell silent past
    /// `heartbeat_timeout` — the remote host is the problem.
    HeartbeatMiss,
}

impl SwitchCause {
    /// Stable label for traces and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SwitchCause::Rule => "rule",
            SwitchCause::OutageWatchdog => "outage_watchdog",
            SwitchCause::HeartbeatMiss => "heartbeat_miss",
        }
    }
}

/// One evaluation's inputs. The first three are Algorithm 2's own
/// signals; the last two feed the cloud-liveness heartbeat, which
/// separates a radio outage (the robot's own diagnostics see a weak
/// signal) from a dead remote host (radio healthy, downlink silent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetInputs {
    /// `r_t` — measured packet bandwidth (packets/s).
    pub bandwidth: f64,
    /// `d_t` — signal direction (positive = approaching the WAP).
    pub direction: f64,
    /// Do the offloadable nodes currently run remotely?
    pub remote_active: bool,
    /// Virtual age of the last robot-side downlink arrival; `None`
    /// until the remote has been heard from at all (a fresh offload
    /// gets `heartbeat_timeout` to produce its first downlink).
    pub since_downlink: Option<Duration>,
    /// The robot's own radio diagnostics: weak signal or scripted
    /// blackout right now. A silent downlink under a *weak* radio is
    /// an outage, not a crash — the heartbeat must not fire.
    pub radio_weak: bool,
}

/// The full outcome of one [`NetControl::evaluate`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetVerdict {
    /// What to do with the node placement.
    pub decision: NetDecision,
    /// Why (meaningful when `decision != Keep`).
    pub cause: SwitchCause,
    /// `Some((wait, failures))` exactly once per failure: the moment
    /// re-offload conditions first became satisfied again and the
    /// pending exponential backoff armed instead. The caller should
    /// emit a `reoffload_backoff` trace event from this.
    pub backoff_armed: Option<(Duration, u64)>,
}

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetControlConfig {
    /// Bandwidth threshold (packets/s). The paper uses 4 of a 5 Hz
    /// send rate (§VIII-C).
    pub bandwidth_threshold: f64,
    /// Minimum time between switches (hysteresis dwell).
    pub min_dwell: Duration,
    /// Ignore measurements this long after startup (the bandwidth
    /// window and direction estimator need to fill).
    pub warmup: Duration,
    /// Direction magnitudes below this count as "not moving" (neither
    /// branch of Algorithm 2 fires).
    pub direction_deadband: f64,
    /// Extension beyond the paper's Algorithm 2: if the bandwidth has
    /// been below threshold for this long while offloaded, invoke the
    /// nodes locally regardless of signal direction. The paper's two
    /// rules only cover the *mobility* cases; a stationary robot in a
    /// total outage would otherwise deadlock (it cannot move without
    /// commands, and it cannot switch without moving).
    pub outage_timeout: Duration,
    /// Cloud-liveness heartbeat: if the downlink has been silent this
    /// long while offloaded *and the radio itself looks healthy*, the
    /// remote host is presumed dead and the nodes are invoked locally
    /// immediately — bypassing the dwell, well before the outage
    /// watchdog would react.
    pub heartbeat_timeout: Duration,
    /// First re-offload backoff after a failed offload; doubles per
    /// consecutive failure.
    pub backoff_base: Duration,
    /// Ceiling for the exponential backoff.
    pub backoff_cap: Duration,
    /// Forget recorded failures (and any pending backoff) after the
    /// remote has been continuously healthy this long.
    pub failure_forget: Duration,
}

impl Default for NetControlConfig {
    fn default() -> Self {
        NetControlConfig {
            bandwidth_threshold: 4.0,
            min_dwell: Duration::from_millis(1500),
            warmup: Duration::from_secs(2),
            direction_deadband: 0.02,
            outage_timeout: Duration::from_secs(5),
            heartbeat_timeout: Duration::from_millis(1500),
            backoff_base: Duration::from_secs(2),
            backoff_cap: Duration::from_secs(30),
            failure_forget: Duration::from_secs(30),
        }
    }
}

/// Algorithm 2 with switch-dwell hysteresis, a cloud-liveness
/// heartbeat, and exponential re-offload backoff.
#[derive(Debug, Clone)]
pub struct NetControl {
    cfg: NetControlConfig,
    last_switch: Option<SimTime>,
    started: Option<SimTime>,
    starved_since: Option<SimTime>,
    healthy_since: Option<SimTime>,
    /// Consecutive offload failures (crash, outage, timed-out
    /// migration) with no sustained healthy period between them.
    failures: u64,
    /// A failure was recorded and its backoff has not armed yet.
    backoff_pending: bool,
    /// Wait computed at the last `record_failure`.
    backoff_wait: Duration,
    /// Once armed: re-offload is suppressed until this instant.
    backoff_until: Option<SimTime>,
    /// Switches performed (diagnostics).
    pub switches: u64,
}

impl NetControl {
    /// Build with config.
    pub fn new(cfg: NetControlConfig) -> Self {
        NetControl {
            cfg,
            last_switch: None,
            started: None,
            starved_since: None,
            healthy_since: None,
            failures: 0,
            backoff_pending: false,
            backoff_wait: Duration::ZERO,
            backoff_until: None,
            switches: 0,
        }
    }

    /// Evaluate the rule at `now` given the measured packet bandwidth
    /// `r_t` (packets/s), the signal direction `d_t` (positive =
    /// approaching the WAP), and whether the nodes currently run
    /// remotely.
    ///
    /// Legacy entry point: no heartbeat inputs, so only the rule and
    /// the outage watchdog can fire (a weak radio suppresses the
    /// heartbeat by definition).
    pub fn decide(&mut self, now: SimTime, r_t: f64, d_t: f64, remote_active: bool) -> NetDecision {
        self.evaluate(
            now,
            NetInputs {
                bandwidth: r_t,
                direction: d_t,
                remote_active,
                since_downlink: None,
                radio_weak: true,
            },
        )
        .decision
    }

    /// Full evaluation with liveness inputs.
    pub fn evaluate(&mut self, now: SimTime, inp: NetInputs) -> NetVerdict {
        let keep = |cause| NetVerdict {
            decision: NetDecision::Keep,
            cause,
            backoff_armed: None,
        };
        let started = *self.started.get_or_insert(now);
        if now.saturating_since(started) < self.cfg.warmup {
            return keep(SwitchCause::Rule);
        }

        // Forget old failures once the remote has been continuously
        // healthy long enough — the next incident backs off from the
        // base again.
        if inp.remote_active && inp.bandwidth >= self.cfg.bandwidth_threshold {
            let since = *self.healthy_since.get_or_insert(now);
            if now.saturating_since(since) >= self.cfg.failure_forget {
                self.failures = 0;
                self.backoff_pending = false;
                self.backoff_until = None;
            }
        } else {
            self.healthy_since = None;
        }

        // Cloud-liveness heartbeat: checked before the dwell so a
        // crashed remote never strands the robot waiting out
        // hysteresis. Fires only when the radio itself is healthy —
        // a silent downlink behind a weak signal is the watchdog's
        // territory.
        if inp.remote_active && !inp.radio_weak {
            if let Some(age) = inp.since_downlink {
                if age >= self.cfg.heartbeat_timeout {
                    self.starved_since = None;
                    self.last_switch = Some(now);
                    self.switches += 1;
                    self.record_failure(now);
                    return NetVerdict {
                        decision: NetDecision::InvokeLocal,
                        cause: SwitchCause::HeartbeatMiss,
                        backoff_armed: None,
                    };
                }
            }
        }

        if let Some(last) = self.last_switch {
            if now.saturating_since(last) < self.cfg.min_dwell {
                return keep(SwitchCause::Rule);
            }
        }
        // Outage watchdog (extension; see `NetControlConfig`).
        if inp.remote_active && inp.bandwidth < self.cfg.bandwidth_threshold {
            let since = *self.starved_since.get_or_insert(now);
            if now.saturating_since(since) >= self.cfg.outage_timeout {
                self.starved_since = None;
                self.last_switch = Some(now);
                self.switches += 1;
                self.record_failure(now);
                return NetVerdict {
                    decision: NetDecision::InvokeLocal,
                    cause: SwitchCause::OutageWatchdog,
                    backoff_armed: None,
                };
            }
        } else {
            self.starved_since = None;
        }

        let db = self.cfg.direction_deadband;
        let (r_t, d_t) = (inp.bandwidth, inp.direction);
        let decision = if r_t < self.cfg.bandwidth_threshold && d_t < -db && inp.remote_active {
            NetDecision::InvokeLocal
        } else if r_t > self.cfg.bandwidth_threshold && d_t > db && !inp.remote_active {
            NetDecision::InvokeRemote
        } else {
            NetDecision::Keep
        };

        // Gate re-offload behind the backoff. The wait is measured
        // from the moment retry conditions are first satisfied again
        // (armed here), not from the failure itself — so a long crash
        // window cannot silently swallow the whole wait.
        if decision == NetDecision::InvokeRemote {
            if self.backoff_pending {
                self.backoff_pending = false;
                self.backoff_until = Some(now + self.backoff_wait);
                return NetVerdict {
                    decision: NetDecision::Keep,
                    cause: SwitchCause::Rule,
                    backoff_armed: Some((self.backoff_wait, self.failures)),
                };
            }
            if let Some(until) = self.backoff_until {
                if now < until {
                    return keep(SwitchCause::Rule);
                }
                self.backoff_until = None;
            }
        }

        if decision != NetDecision::Keep {
            self.last_switch = Some(now);
            self.switches += 1;
        }
        NetVerdict {
            decision,
            cause: SwitchCause::Rule,
            backoff_armed: None,
        }
    }

    /// Record a failed offload (remote crash, outage fallback, or a
    /// timed-out migration). The next `InvokeRemote` the rule would
    /// emit instead arms an exponential backoff — `base × 2^(n−1)`,
    /// capped — and only after that wait does re-offload go through.
    /// Heartbeat and watchdog switches record themselves; callers only
    /// need this for failures the controller cannot see (e.g. a
    /// migration deadline expiry).
    pub fn record_failure(&mut self, _now: SimTime) {
        self.failures += 1;
        let exp = (self.failures - 1).min(16) as u32;
        let wait = self.cfg.backoff_base * (1u64 << exp) as f64;
        self.backoff_wait = wait.min(self.cfg.backoff_cap);
        self.backoff_pending = true;
        self.backoff_until = None;
    }

    /// Consecutive failures currently held against the remote.
    pub fn failure_count(&self) -> u64 {
        self.failures
    }
}

/// The naive latency-threshold controller Algorithm 2 replaces. Used
/// by the ablation benches to reproduce the Fig. 7 failure: under
/// weak signal the observed latency stays healthy (survivor bias), so
/// this controller never reacts.
#[derive(Debug, Clone)]
pub struct LatencyOnlyControl {
    /// Switch local when observed tail latency exceeds this.
    pub latency_threshold: Duration,
}

impl LatencyOnlyControl {
    /// Evaluate on the latest observed (survivor) latency; `None`
    /// means no packet arrived — which this naive controller treats
    /// as "no news is good news", exactly its failure mode.
    pub fn decide(&self, observed: Option<Duration>, remote_active: bool) -> NetDecision {
        match observed {
            Some(lat) if lat > self.latency_threshold && remote_active => NetDecision::InvokeLocal,
            _ => NetDecision::Keep,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::EPOCH + Duration::from_millis(ms)
    }

    /// A controller whose warm-up has already elapsed (first decide
    /// call pins the start time).
    fn warmed() -> NetControl {
        let mut c = NetControl::new(NetControlConfig::default());
        assert_eq!(c.decide(t(0), 5.0, 0.0, true), NetDecision::Keep);
        c
    }

    #[test]
    fn warmup_suppresses_early_decisions() {
        let mut c = NetControl::new(NetControlConfig::default());
        // Clear "go local" conditions, but inside the warm-up window.
        assert_eq!(c.decide(t(0), 0.0, -0.5, true), NetDecision::Keep);
        assert_eq!(c.decide(t(1000), 0.0, -0.5, true), NetDecision::Keep);
        assert_eq!(c.decide(t(2500), 0.0, -0.5, true), NetDecision::InvokeLocal);
    }

    #[test]
    fn weak_and_retreating_goes_local() {
        let mut c = warmed();
        assert_eq!(c.decide(t(3000), 1.0, -0.5, true), NetDecision::InvokeLocal);
    }

    #[test]
    fn strong_and_approaching_goes_remote() {
        let mut c = warmed();
        assert_eq!(
            c.decide(t(3000), 5.0, 0.5, false),
            NetDecision::InvokeRemote
        );
    }

    #[test]
    fn mixed_signals_keep() {
        let mut c = warmed();
        // Weak but approaching: the link is about to recover — keep.
        assert_eq!(c.decide(t(3000), 1.0, 0.5, true), NetDecision::Keep);
        // Strong but retreating: still fine for now — keep.
        assert_eq!(c.decide(t(3010), 5.0, -0.5, true), NetDecision::Keep);
    }

    #[test]
    fn idempotent_states_keep() {
        let mut c = warmed();
        // Already local, weak signal: nothing to do.
        assert_eq!(c.decide(t(3000), 1.0, -0.5, false), NetDecision::Keep);
        // Already remote, strong signal: nothing to do.
        assert_eq!(c.decide(t(3010), 5.0, 0.5, true), NetDecision::Keep);
    }

    #[test]
    fn dwell_prevents_flapping() {
        let mut c = warmed();
        assert_eq!(c.decide(t(3000), 1.0, -0.5, true), NetDecision::InvokeLocal);
        // Immediately after, conditions say "go remote" — suppressed.
        assert_eq!(c.decide(t(3200), 5.0, 0.5, false), NetDecision::Keep);
        // After the dwell expires the switch is allowed.
        assert_eq!(
            c.decide(t(5000), 5.0, 0.5, false),
            NetDecision::InvokeRemote
        );
        assert_eq!(c.switches, 2);
    }

    #[test]
    fn threshold_is_strict() {
        let mut c = warmed();
        // Exactly at the threshold: neither branch fires.
        assert_eq!(c.decide(t(3000), 4.0, -0.5, true), NetDecision::Keep);
        assert_eq!(c.decide(t(3010), 4.0, 0.5, false), NetDecision::Keep);
    }

    #[test]
    fn outage_watchdog_fires_without_motion() {
        // Stationary robot, dead link: the mobility rules can never
        // fire (direction ≈ 0), but the watchdog must.
        let mut c = warmed();
        let mut fired = false;
        for k in 0..15 {
            let d = c.decide(t(3000 + k * 1000), 0.0, 0.0, true);
            if d == NetDecision::InvokeLocal {
                fired = true;
                break;
            }
        }
        assert!(fired, "watchdog should invoke local during a total outage");
    }

    #[test]
    fn watchdog_resets_when_bandwidth_recovers() {
        let mut c = warmed();
        // 3 s starved, then healthy again: no switch.
        assert_eq!(c.decide(t(3000), 0.0, 0.0, true), NetDecision::Keep);
        assert_eq!(c.decide(t(6000), 0.0, 0.0, true), NetDecision::Keep);
        assert_eq!(c.decide(t(7000), 5.0, 0.0, true), NetDecision::Keep);
        // Starvation clock restarted: 4 s more of starvation is short
        // of the 5 s timeout.
        assert_eq!(c.decide(t(8000), 0.0, 0.0, true), NetDecision::Keep);
        assert_eq!(c.decide(t(11_000), 0.0, 0.0, true), NetDecision::Keep);
        assert_eq!(c.switches, 0);
    }

    #[test]
    fn direction_deadband_suppresses_jitter() {
        let mut c = warmed();
        assert_eq!(c.decide(t(3000), 1.0, -0.005, true), NetDecision::Keep);
        assert_eq!(c.decide(t(3010), 5.0, 0.005, false), NetDecision::Keep);
    }

    /// Heartbeat inputs: remote active, downlink silent for `age_ms`,
    /// radio weak or not.
    fn hb(age_ms: u64, radio_weak: bool) -> NetInputs {
        NetInputs {
            bandwidth: 5.0,
            direction: 0.0,
            remote_active: true,
            since_downlink: Some(Duration::from_millis(age_ms)),
            radio_weak,
        }
    }

    #[test]
    fn heartbeat_fires_fast_when_radio_is_healthy() {
        let mut c = warmed();
        // Downlink silent 1.6 s > 1.5 s timeout, radio fine: the
        // remote is dead — local fallback right now, no 5 s watchdog
        // wait, and the failure is held against the remote.
        let v = c.evaluate(t(3000), hb(1600, false));
        assert_eq!(v.decision, NetDecision::InvokeLocal);
        assert_eq!(v.cause, SwitchCause::HeartbeatMiss);
        assert_eq!(c.failure_count(), 1);
    }

    #[test]
    fn heartbeat_bypasses_the_dwell() {
        let mut c = warmed();
        // A rule switch just happened...
        assert_eq!(
            c.decide(t(3000), 5.0, 0.5, false),
            NetDecision::InvokeRemote
        );
        // ...and 200 ms later the remote dies. The dwell must not
        // delay the fallback.
        let v = c.evaluate(t(3200), hb(1600, false));
        assert_eq!(v.decision, NetDecision::InvokeLocal);
        assert_eq!(v.cause, SwitchCause::HeartbeatMiss);
    }

    #[test]
    fn heartbeat_suppressed_during_radio_outage() {
        let mut c = warmed();
        // Same silence, but the robot's own diagnostics show a weak
        // radio: this is an outage, not a crash — the watchdog (not
        // the heartbeat) owns it.
        let mut inp = hb(1600, true);
        inp.bandwidth = 0.0;
        let v = c.evaluate(t(3000), inp);
        assert_eq!(v.decision, NetDecision::Keep);
        assert_eq!(c.failure_count(), 0);
    }

    #[test]
    fn heartbeat_waits_for_a_first_downlink() {
        let mut c = warmed();
        // Freshly offloaded: no downlink seen yet. Not a miss.
        let mut inp = hb(0, false);
        inp.since_downlink = None;
        assert_eq!(c.evaluate(t(3000), inp).decision, NetDecision::Keep);
    }

    #[test]
    fn backoff_arms_at_retry_eligibility_and_doubles() {
        let mut c = warmed();
        c.record_failure(t(3000));
        // Retry conditions first satisfied at t=10 s: the rule wants
        // InvokeRemote, but the 2 s backoff arms instead — once.
        let retry = |c: &mut NetControl, ms| {
            c.evaluate(
                t(ms),
                NetInputs {
                    bandwidth: 5.0,
                    direction: 0.5,
                    remote_active: false,
                    since_downlink: None,
                    radio_weak: false,
                },
            )
        };
        let v = retry(&mut c, 10_000);
        assert_eq!(v.decision, NetDecision::Keep);
        assert_eq!(v.backoff_armed, Some((Duration::from_secs(2), 1)));
        // Still waiting at +1 s, no re-announcement.
        let v = retry(&mut c, 11_000);
        assert_eq!(v.decision, NetDecision::Keep);
        assert_eq!(v.backoff_armed, None);
        // Wait elapsed: re-offload goes through.
        assert_eq!(retry(&mut c, 12_100).decision, NetDecision::InvokeRemote);
        // A second failure doubles the wait.
        c.record_failure(t(13_000));
        let v = retry(&mut c, 20_000);
        assert_eq!(v.backoff_armed, Some((Duration::from_secs(4), 2)));
        assert_eq!(retry(&mut c, 22_000).decision, NetDecision::Keep);
        assert_eq!(retry(&mut c, 24_100).decision, NetDecision::InvokeRemote);
    }

    #[test]
    fn backoff_wait_is_capped() {
        let mut c = warmed();
        for k in 0..10 {
            c.record_failure(t(3000 + k));
        }
        let v = c.evaluate(
            t(10_000),
            NetInputs {
                bandwidth: 5.0,
                direction: 0.5,
                remote_active: false,
                since_downlink: None,
                radio_weak: false,
            },
        );
        assert_eq!(v.backoff_armed, Some((Duration::from_secs(30), 10)));
    }

    #[test]
    fn sustained_health_forgets_failures() {
        let mut c = warmed();
        c.record_failure(t(3000));
        assert_eq!(c.failure_count(), 1);
        // Healthy remote for > failure_forget (30 s): history cleared,
        // including the pending backoff.
        let healthy = |c: &mut NetControl, ms| {
            c.evaluate(
                t(ms),
                NetInputs {
                    bandwidth: 5.0,
                    direction: 0.0,
                    remote_active: true,
                    since_downlink: Some(Duration::from_millis(100)),
                    radio_weak: false,
                },
            )
        };
        healthy(&mut c, 4000);
        healthy(&mut c, 40_000);
        assert_eq!(c.failure_count(), 0);
    }

    #[test]
    fn legacy_decide_never_sees_a_heartbeat() {
        // decide() passes radio_weak = true and no downlink age: the
        // heartbeat path is unreachable, preserving the original
        // Algorithm 2 + watchdog behaviour byte-for-byte.
        let mut c = warmed();
        assert_eq!(c.decide(t(3000), 5.0, 0.0, true), NetDecision::Keep);
        assert_eq!(c.failure_count(), 0);
    }

    #[test]
    fn latency_only_controller_misses_silent_loss() {
        let c = LatencyOnlyControl {
            latency_threshold: Duration::from_millis(100),
        };
        // Survivor packets look healthy → Keep, even though the link
        // is actually starving (no packets at all → also Keep).
        assert_eq!(
            c.decide(Some(Duration::from_millis(8)), true),
            NetDecision::Keep
        );
        assert_eq!(c.decide(None, true), NetDecision::Keep);
        // It only reacts to a latency it can *see*.
        assert_eq!(
            c.decide(Some(Duration::from_millis(500)), true),
            NetDecision::InvokeLocal
        );
    }
}
