//! Algorithm 2: offload network quality control (paper §VI-A).
//!
//! Latency statistics lie over VDP-style UDP links (Fig. 7): packets
//! silently discarded at the sender never appear in any percentile,
//! so the tail looks healthy precisely while the link starves. The
//! paper's controller therefore watches two robust signals:
//!
//! * `r_t` — **packet bandwidth**: the receive rate over a window;
//!   with a fixed 5 Hz send rate it directly exposes loss;
//! * `d_t` — **signal direction**: whether the LGV is moving towards
//!   (+) or away from (−) the WAP, from its internal world model.
//!
//! The decision rule is exactly Algorithm 2, plus a dwell time so the
//! system cannot flap when hovering at the threshold:
//!
//! ```text
//! if r_t < threshold and d_t < 0 → invoke nodes locally
//! if r_t > threshold and d_t > 0 → invoke nodes remotely
//! otherwise                      → keep the current placement
//! ```
//!
//! A latency-threshold baseline ([`LatencyOnlyControl`]) is included
//! for the ablation benches — it demonstrates the Fig. 7/11 failure.

use lgv_types::prelude::*;
use serde::{Deserialize, Serialize};

/// What Algorithm 2 wants done with the currently-offloaded node set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetDecision {
    /// Migrate the offloaded nodes back onto the LGV.
    InvokeLocal,
    /// (Re-)offload the nodes to the remote server.
    InvokeRemote,
    /// No change.
    Keep,
}

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetControlConfig {
    /// Bandwidth threshold (packets/s). The paper uses 4 of a 5 Hz
    /// send rate (§VIII-C).
    pub bandwidth_threshold: f64,
    /// Minimum time between switches (hysteresis dwell).
    pub min_dwell: Duration,
    /// Ignore measurements this long after startup (the bandwidth
    /// window and direction estimator need to fill).
    pub warmup: Duration,
    /// Direction magnitudes below this count as "not moving" (neither
    /// branch of Algorithm 2 fires).
    pub direction_deadband: f64,
    /// Extension beyond the paper's Algorithm 2: if the bandwidth has
    /// been below threshold for this long while offloaded, invoke the
    /// nodes locally regardless of signal direction. The paper's two
    /// rules only cover the *mobility* cases; a stationary robot in a
    /// total outage would otherwise deadlock (it cannot move without
    /// commands, and it cannot switch without moving).
    pub outage_timeout: Duration,
}

impl Default for NetControlConfig {
    fn default() -> Self {
        NetControlConfig {
            bandwidth_threshold: 4.0,
            min_dwell: Duration::from_millis(1500),
            warmup: Duration::from_secs(2),
            direction_deadband: 0.02,
            outage_timeout: Duration::from_secs(5),
        }
    }
}

/// Algorithm 2 with switch-dwell hysteresis.
#[derive(Debug, Clone)]
pub struct NetControl {
    cfg: NetControlConfig,
    last_switch: Option<SimTime>,
    started: Option<SimTime>,
    starved_since: Option<SimTime>,
    /// Switches performed (diagnostics).
    pub switches: u64,
}

impl NetControl {
    /// Build with config.
    pub fn new(cfg: NetControlConfig) -> Self {
        NetControl { cfg, last_switch: None, started: None, starved_since: None, switches: 0 }
    }

    /// Evaluate the rule at `now` given the measured packet bandwidth
    /// `r_t` (packets/s), the signal direction `d_t` (positive =
    /// approaching the WAP), and whether the nodes currently run
    /// remotely.
    pub fn decide(&mut self, now: SimTime, r_t: f64, d_t: f64, remote_active: bool) -> NetDecision {
        let started = *self.started.get_or_insert(now);
        if now.saturating_since(started) < self.cfg.warmup {
            return NetDecision::Keep;
        }
        if let Some(last) = self.last_switch {
            if now.saturating_since(last) < self.cfg.min_dwell {
                return NetDecision::Keep;
            }
        }
        // Outage watchdog (extension; see `NetControlConfig`).
        if remote_active && r_t < self.cfg.bandwidth_threshold {
            let since = *self.starved_since.get_or_insert(now);
            if now.saturating_since(since) >= self.cfg.outage_timeout {
                self.starved_since = None;
                self.last_switch = Some(now);
                self.switches += 1;
                return NetDecision::InvokeLocal;
            }
        } else {
            self.starved_since = None;
        }

        let db = self.cfg.direction_deadband;
        let decision = if r_t < self.cfg.bandwidth_threshold && d_t < -db && remote_active {
            NetDecision::InvokeLocal
        } else if r_t > self.cfg.bandwidth_threshold && d_t > db && !remote_active {
            NetDecision::InvokeRemote
        } else {
            NetDecision::Keep
        };
        if decision != NetDecision::Keep {
            self.last_switch = Some(now);
            self.switches += 1;
        }
        decision
    }
}

/// The naive latency-threshold controller Algorithm 2 replaces. Used
/// by the ablation benches to reproduce the Fig. 7 failure: under
/// weak signal the observed latency stays healthy (survivor bias), so
/// this controller never reacts.
#[derive(Debug, Clone)]
pub struct LatencyOnlyControl {
    /// Switch local when observed tail latency exceeds this.
    pub latency_threshold: Duration,
}

impl LatencyOnlyControl {
    /// Evaluate on the latest observed (survivor) latency; `None`
    /// means no packet arrived — which this naive controller treats
    /// as "no news is good news", exactly its failure mode.
    pub fn decide(&self, observed: Option<Duration>, remote_active: bool) -> NetDecision {
        match observed {
            Some(lat) if lat > self.latency_threshold && remote_active => {
                NetDecision::InvokeLocal
            }
            _ => NetDecision::Keep,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::EPOCH + Duration::from_millis(ms)
    }

    /// A controller whose warm-up has already elapsed (first decide
    /// call pins the start time).
    fn warmed() -> NetControl {
        let mut c = NetControl::new(NetControlConfig::default());
        assert_eq!(c.decide(t(0), 5.0, 0.0, true), NetDecision::Keep);
        c
    }

    #[test]
    fn warmup_suppresses_early_decisions() {
        let mut c = NetControl::new(NetControlConfig::default());
        // Clear "go local" conditions, but inside the warm-up window.
        assert_eq!(c.decide(t(0), 0.0, -0.5, true), NetDecision::Keep);
        assert_eq!(c.decide(t(1000), 0.0, -0.5, true), NetDecision::Keep);
        assert_eq!(c.decide(t(2500), 0.0, -0.5, true), NetDecision::InvokeLocal);
    }

    #[test]
    fn weak_and_retreating_goes_local() {
        let mut c = warmed();
        assert_eq!(c.decide(t(3000), 1.0, -0.5, true), NetDecision::InvokeLocal);
    }

    #[test]
    fn strong_and_approaching_goes_remote() {
        let mut c = warmed();
        assert_eq!(c.decide(t(3000), 5.0, 0.5, false), NetDecision::InvokeRemote);
    }

    #[test]
    fn mixed_signals_keep() {
        let mut c = warmed();
        // Weak but approaching: the link is about to recover — keep.
        assert_eq!(c.decide(t(3000), 1.0, 0.5, true), NetDecision::Keep);
        // Strong but retreating: still fine for now — keep.
        assert_eq!(c.decide(t(3010), 5.0, -0.5, true), NetDecision::Keep);
    }

    #[test]
    fn idempotent_states_keep() {
        let mut c = warmed();
        // Already local, weak signal: nothing to do.
        assert_eq!(c.decide(t(3000), 1.0, -0.5, false), NetDecision::Keep);
        // Already remote, strong signal: nothing to do.
        assert_eq!(c.decide(t(3010), 5.0, 0.5, true), NetDecision::Keep);
    }

    #[test]
    fn dwell_prevents_flapping() {
        let mut c = warmed();
        assert_eq!(c.decide(t(3000), 1.0, -0.5, true), NetDecision::InvokeLocal);
        // Immediately after, conditions say "go remote" — suppressed.
        assert_eq!(c.decide(t(3200), 5.0, 0.5, false), NetDecision::Keep);
        // After the dwell expires the switch is allowed.
        assert_eq!(c.decide(t(5000), 5.0, 0.5, false), NetDecision::InvokeRemote);
        assert_eq!(c.switches, 2);
    }

    #[test]
    fn threshold_is_strict() {
        let mut c = warmed();
        // Exactly at the threshold: neither branch fires.
        assert_eq!(c.decide(t(3000), 4.0, -0.5, true), NetDecision::Keep);
        assert_eq!(c.decide(t(3010), 4.0, 0.5, false), NetDecision::Keep);
    }

    #[test]
    fn outage_watchdog_fires_without_motion() {
        // Stationary robot, dead link: the mobility rules can never
        // fire (direction ≈ 0), but the watchdog must.
        let mut c = warmed();
        let mut fired = false;
        for k in 0..15 {
            let d = c.decide(t(3000 + k * 1000), 0.0, 0.0, true);
            if d == NetDecision::InvokeLocal {
                fired = true;
                break;
            }
        }
        assert!(fired, "watchdog should invoke local during a total outage");
    }

    #[test]
    fn watchdog_resets_when_bandwidth_recovers() {
        let mut c = warmed();
        // 3 s starved, then healthy again: no switch.
        assert_eq!(c.decide(t(3000), 0.0, 0.0, true), NetDecision::Keep);
        assert_eq!(c.decide(t(6000), 0.0, 0.0, true), NetDecision::Keep);
        assert_eq!(c.decide(t(7000), 5.0, 0.0, true), NetDecision::Keep);
        // Starvation clock restarted: 4 s more of starvation is short
        // of the 5 s timeout.
        assert_eq!(c.decide(t(8000), 0.0, 0.0, true), NetDecision::Keep);
        assert_eq!(c.decide(t(11_000), 0.0, 0.0, true), NetDecision::Keep);
        assert_eq!(c.switches, 0);
    }

    #[test]
    fn direction_deadband_suppresses_jitter() {
        let mut c = warmed();
        assert_eq!(c.decide(t(3000), 1.0, -0.005, true), NetDecision::Keep);
        assert_eq!(c.decide(t(3010), 5.0, 0.005, false), NetDecision::Keep);
    }

    #[test]
    fn latency_only_controller_misses_silent_loss() {
        let c = LatencyOnlyControl { latency_threshold: Duration::from_millis(100) };
        // Survivor packets look healthy → Keep, even though the link
        // is actually starving (no packets at all → also Keep).
        assert_eq!(c.decide(Some(Duration::from_millis(8)), true), NetDecision::Keep);
        assert_eq!(c.decide(None, true), NetDecision::Keep);
        // It only reacts to a latency it can *see*.
        assert_eq!(
            c.decide(Some(Duration::from_millis(500)), true),
            NetDecision::InvokeLocal
        );
    }
}
