//! The runtime Controller (paper §VII).
//!
//! "This specifies the configuration parameters of functional worker
//! nodes for computation offloading and robustness at runtime … it
//! exposes interfaces of decision accuracy and maximum velocity
//! adjustment … and uses profiling data to make corresponding actions
//! based on our strategies."
//!
//! [`Controller`] composes the pluggable decision layer (an
//! [`OffloadPolicy`] — Algorithm 1 by default), Algorithm 2
//! ([`NetControl`]), and the derived actuation limits into one
//! evaluation per control cycle. The mission engine drives it; a
//! library user embedding the framework on their own robot stack calls
//! exactly the same API.
//!
//! Per cycle the Controller evaluates Algorithm 2 first, packages the
//! verdict together with the profiler features into a
//! [`PolicyContext`], and hands the whole context to the policy — so
//! the network controller's invoke-local override is *visible to* the
//! decision layer instead of silently bypassing it.

use crate::classify::Classification;
use crate::model::VelocityModel;
use crate::netctl::{NetControl, NetControlConfig, NetDecision, NetInputs, SwitchCause};
use crate::policy::{EnergyParams, NodeEstimates, OffloadPolicy, PolicyContext};
use crate::strategy::PlacementPlan;
use lgv_trace::{TraceEvent, Tracer};
use lgv_types::prelude::*;

/// Measurements the Controller consumes each cycle (from the Profiler
/// and the switcher).
#[derive(Debug, Clone, Copy)]
pub struct ControlInputs {
    /// `T_l^v`: VDP makespan with the VDP local.
    pub local_vdp: Duration,
    /// `T_c`: VDP makespan with T3 offloaded, network included.
    pub cloud_vdp: Duration,
    /// Packet bandwidth `r_t` (packets/s).
    pub bandwidth: f64,
    /// Signal direction `d_t` (positive = approaching the WAP).
    pub direction: f64,
    /// Whether offloading is currently active.
    pub remote_enabled: bool,
    /// Whether freshly-migrated nodes still lack their state.
    pub cold_state: bool,
    /// Exploration safety cap (None for known-map navigation).
    pub exploration_cap: Option<f64>,
    /// Virtual age of the last downlink arrival at the robot (`None`
    /// until the remote has been heard from) — the cloud-liveness
    /// heartbeat's input.
    pub since_downlink: Option<Duration>,
    /// The robot's own radio diagnostics: weak signal or scripted
    /// blackout right now. Suppresses the heartbeat (a silent
    /// downlink behind a weak radio is an outage, not a crash).
    pub radio_weak: bool,
    /// Latest RTT measurement (the profiler's static WAN prior until
    /// the first echo returns).
    pub rtt: Duration,
    /// Per-node local/remote processing-time and demand estimates for
    /// whole-graph placement scoring.
    pub nodes: NodeEstimates,
    /// Energy-model parameters for placement scoring.
    pub energy: EnergyParams,
}

/// The Controller's per-cycle outputs: what to configure where.
#[derive(Debug, Clone, Copy)]
pub struct ControlDecision {
    /// Algorithm 1's placement plan.
    pub plan: PlacementPlan,
    /// Whether the VDP actually runs remotely this cycle.
    pub vdp_remote: bool,
    /// The makespan in force (drives Eq. 2c and the mux timeout).
    pub makespan: Duration,
    /// Maximum linear velocity (Eq. 2c, all caps applied).
    pub max_linear: f64,
    /// Maximum angular velocity (rotational analogue of Eq. 2c).
    pub max_angular: f64,
    /// Velocity-mux staleness timeout matched to the pipeline rate.
    pub mux_timeout: Duration,
    /// Algorithm 2's verdict for this cycle.
    pub net_decision: NetDecision,
    /// Why the verdict (meaningful when `net_decision != Keep`): the
    /// engine reacts differently to a heartbeat miss (remote dead —
    /// skip migration, rebuild cold) than to a rule switch.
    pub net_cause: SwitchCause,
}

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Eq. 2c parameters.
    pub velocity: VelocityModel,
    /// Algorithm 2 parameters.
    pub netctl: NetControlConfig,
    /// Heading-error budget per reaction interval (rad) for the
    /// angular-velocity cap.
    pub heading_budget: f64,
    /// Velocity cap while node state is still migrating.
    pub cold_state_cap: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            velocity: VelocityModel::default(),
            netctl: NetControlConfig::default(),
            heading_budget: 0.35,
            cold_state_cap: 0.15,
        }
    }
}

/// The runtime Controller.
#[derive(Debug, Clone)]
pub struct Controller {
    cfg: ControllerConfig,
    policy: Box<dyn OffloadPolicy>,
    netctl: NetControl,
    offloaded_deployment: bool,
    adaptive: bool,
    tracer: Tracer,
}

impl Controller {
    /// Build a Controller around an offload-decision policy (use
    /// [`crate::policy::build`] or [`crate::policy::for_mission`] to
    /// construct one).
    ///
    /// * `offloaded` — whether the deployment has a remote host at all;
    /// * `adaptive` — whether Algorithm 2 may switch placements.
    pub fn new(
        cfg: ControllerConfig,
        policy: Box<dyn OffloadPolicy>,
        offloaded: bool,
        adaptive: bool,
    ) -> Self {
        let netctl = NetControl::new(cfg.netctl);
        Controller {
            cfg,
            policy,
            netctl,
            offloaded_deployment: offloaded,
            adaptive,
            tracer: Tracer::disabled(),
        }
    }

    /// The active policy's stable name (`algorithm1` / `global` /
    /// `bandit` / a user-defined one).
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Route per-cycle control decisions to `tracer`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Algorithm 2 switches performed so far.
    pub fn net_switches(&self) -> u64 {
        self.netctl.switches
    }

    /// Consecutive failed offload attempts currently backing off
    /// (resets to zero once a re-offload sticks). The session's
    /// degraded-mode trigger reads this to detect exhausted backoff.
    pub fn offload_failures(&self) -> u64 {
        self.netctl.failure_count()
    }

    /// Record a failed offload the network controller cannot observe
    /// itself (e.g. a migration deadline expiry): the next re-offload
    /// is gated behind an exponential backoff.
    pub fn record_offload_failure(&mut self, now: SimTime) {
        self.netctl.record_failure(now);
    }

    /// Evaluate one control cycle.
    pub fn evaluate(
        &mut self,
        now: SimTime,
        class: &Classification,
        inputs: ControlInputs,
    ) -> ControlDecision {
        // Algorithm 2 + liveness heartbeat + re-offload backoff,
        // evaluated first so the verdict is part of the decision
        // context every policy sees. (Algorithm 2 reads only the
        // network inputs, so evaluating it before the placement
        // decision changes nothing for Algorithm 1.)
        let verdict = if self.adaptive && self.offloaded_deployment {
            self.netctl.evaluate(
                now,
                NetInputs {
                    bandwidth: inputs.bandwidth,
                    direction: inputs.direction,
                    remote_active: inputs.remote_enabled,
                    since_downlink: inputs.since_downlink,
                    radio_weak: inputs.radio_weak,
                },
            )
        } else {
            crate::netctl::NetVerdict {
                decision: NetDecision::Keep,
                cause: SwitchCause::Rule,
                backoff_armed: None,
            }
        };
        let net_decision = verdict.decision;

        // The decision layer: one placement plan from the full context.
        let ctx = PolicyContext {
            class,
            local_vdp: inputs.local_vdp,
            cloud_vdp: inputs.cloud_vdp,
            rtt: inputs.rtt,
            bandwidth: inputs.bandwidth,
            direction: inputs.direction,
            remote_enabled: inputs.remote_enabled,
            cold_state: inputs.cold_state,
            offload_failures: self.netctl.failure_count(),
            net: verdict,
            nodes: inputs.nodes,
            energy: inputs.energy,
        };
        let plan = self.policy.decide(now, &ctx);
        let vdp_remote = self.offloaded_deployment
            && inputs.remote_enabled
            && plan.remote.contains(NodeKind::PathTracking);
        let makespan = if vdp_remote {
            inputs.cloud_vdp
        } else {
            inputs.local_vdp
        };

        // Eq. 2c velocity with the safety and cold-state caps.
        let mut max_linear = self.cfg.velocity.vmax(makespan);
        if let Some(cap) = inputs.exploration_cap {
            max_linear = max_linear.min(cap);
        }
        if inputs.cold_state {
            max_linear = max_linear.min(self.cfg.cold_state_cap);
        }

        // Rotational budget and pipeline-matched staleness timeout.
        let max_angular =
            (self.cfg.heading_budget / makespan.as_secs_f64().max(0.05)).clamp(0.4, 2.84);
        let mux_timeout = Duration::from_millis(600).max(makespan * 2.5);
        if verdict.cause == SwitchCause::HeartbeatMiss {
            let silence = inputs.since_downlink.unwrap_or(Duration::ZERO);
            self.tracer.emit_at(
                now.as_nanos(),
                TraceEvent::HeartbeatMiss {
                    silence_ns: silence.as_nanos(),
                },
            );
        }
        if let Some((wait, failures)) = verdict.backoff_armed {
            self.tracer.emit_at(
                now.as_nanos(),
                TraceEvent::ReoffloadBackoff {
                    wait_ns: wait.as_nanos(),
                    failures,
                },
            );
        }

        self.tracer
            .emit_with_at(now.as_nanos(), || TraceEvent::PolicyDecide {
                policy: self.policy.name().to_string(),
                remote: if plan.remote.is_empty() {
                    "-".to_string()
                } else {
                    plan.remote
                        .iter()
                        .map(NodeKind::short_name)
                        .collect::<Vec<_>>()
                        .join("+")
                },
                expected_vdp_ns: plan.expected_vdp.as_nanos(),
                max_velocity: plan.max_velocity,
            });
        self.tracer
            .emit_with_at(now.as_nanos(), || TraceEvent::ControlDecision {
                local_vdp_ns: inputs.local_vdp.as_nanos(),
                cloud_vdp_ns: inputs.cloud_vdp.as_nanos(),
                bandwidth: inputs.bandwidth,
                direction: inputs.direction,
                vdp_remote,
                max_linear,
                net_decision: match net_decision {
                    NetDecision::Keep => "keep".to_string(),
                    NetDecision::InvokeLocal => "invoke_local".to_string(),
                    NetDecision::InvokeRemote => "invoke_remote".to_string(),
                },
            });

        ControlDecision {
            plan,
            vdp_remote,
            makespan,
            max_linear,
            max_angular,
            mux_timeout,
            net_decision,
            net_cause: verdict.cause,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, table2_with_map};
    use crate::model::Goal;
    use crate::policy::{build, PolicyKind};
    use crate::strategy::PinPolicy;

    fn controller(adaptive: bool) -> Controller {
        Controller::new(
            ControllerConfig::default(),
            build(
                PolicyKind::Algorithm1,
                Goal::MissionTime,
                VelocityModel::default(),
                PinPolicy::none(),
                0,
            ),
            true,
            adaptive,
        )
    }

    fn inputs(local_ms: u64, cloud_ms: u64, remote: bool) -> ControlInputs {
        ControlInputs {
            local_vdp: Duration::from_millis(local_ms),
            cloud_vdp: Duration::from_millis(cloud_ms),
            bandwidth: 5.0,
            direction: 0.1,
            remote_enabled: remote,
            cold_state: false,
            exploration_cap: None,
            since_downlink: None,
            radio_weak: false,
            rtt: Duration::from_millis(20),
            nodes: NodeEstimates::default(),
            energy: EnergyParams::default(),
        }
    }

    fn t(s: u64) -> SimTime {
        SimTime::EPOCH + Duration::from_secs(s)
    }

    #[test]
    fn good_network_runs_vdp_remotely_and_fast() {
        let mut c = controller(true);
        let class = classify(&table2_with_map());
        let d = c.evaluate(t(10), &class, inputs(600, 60, true));
        assert!(d.vdp_remote);
        assert_eq!(d.makespan, Duration::from_millis(60));
        assert!(d.max_linear > 0.4);
        assert!(d.max_angular > 2.0);
    }

    #[test]
    fn bad_network_pulls_vdp_back_and_slows() {
        let mut c = controller(true);
        let class = classify(&table2_with_map());
        let d = c.evaluate(t(10), &class, inputs(600, 900, true));
        assert!(!d.vdp_remote, "MCT must migrate T3 back");
        assert_eq!(d.makespan, Duration::from_millis(600));
        assert!(d.max_linear < 0.25);
        assert!(d.max_angular < 1.0, "slow pipeline must bound turn rate");
        assert!(d.mux_timeout >= Duration::from_millis(1500));
    }

    #[test]
    fn cold_state_caps_velocity() {
        let mut c = controller(true);
        let class = classify(&table2_with_map());
        let mut i = inputs(600, 60, true);
        i.cold_state = true;
        let d = c.evaluate(t(10), &class, i);
        assert!(d.max_linear <= 0.15 + 1e-12);
    }

    #[test]
    fn exploration_cap_applies() {
        let mut c = controller(true);
        let class = classify(&table2_with_map());
        let mut i = inputs(600, 40, true);
        i.exploration_cap = Some(0.3);
        let d = c.evaluate(t(10), &class, i);
        assert!(d.max_linear <= 0.3 + 1e-12);
    }

    #[test]
    fn non_adaptive_controller_never_switches() {
        let mut c = controller(false);
        let class = classify(&table2_with_map());
        let mut i = inputs(600, 60, true);
        i.bandwidth = 0.0;
        i.direction = -0.5;
        for k in 0..20 {
            let d = c.evaluate(t(k), &class, i);
            assert_eq!(d.net_decision, NetDecision::Keep);
        }
        assert_eq!(c.net_switches(), 0);
    }

    #[test]
    fn heartbeat_miss_reaches_the_decision() {
        let mut c = controller(true);
        let class = classify(&table2_with_map());
        let mut i = inputs(600, 60, true);
        // Prime past the network controller's warmup with a healthy
        // downlink first.
        i.since_downlink = Some(Duration::from_millis(100));
        c.evaluate(t(1), &class, i);
        // Radio healthy, downlink silent past the 1.5 s timeout: the
        // controller reports the crash cause so the engine can skip
        // migration and rebuild cold.
        i.since_downlink = Some(Duration::from_millis(1700));
        let d = c.evaluate(t(10), &class, i);
        assert_eq!(d.net_decision, NetDecision::InvokeLocal);
        assert_eq!(d.net_cause, SwitchCause::HeartbeatMiss);
    }

    #[test]
    fn adaptive_controller_switches_in_dead_zone() {
        let mut c = controller(true);
        let class = classify(&table2_with_map());
        let mut i = inputs(600, 60, true);
        i.bandwidth = 0.5;
        i.direction = -0.5;
        let mut switched = false;
        for k in 0..20 {
            let d = c.evaluate(t(k), &class, i);
            if d.net_decision == NetDecision::InvokeLocal {
                switched = true;
                // The caller applies the decision.
                i.remote_enabled = false;
            }
        }
        assert!(switched);
        assert_eq!(c.net_switches(), 1, "conditions stay local: no flapping");
    }
}
