//! Failure-recovery policy knobs.
//!
//! PR 3's crash recovery hardcoded its constants: an 8 s migration
//! rebuild horizon, a 1.5 s cloud-liveness heartbeat, and a 2 s → 30 s
//! exponential re-offload backoff, all buried in `session.rs` /
//! `netctl.rs`. [`RecoveryConfig`] hoists them into one place and adds
//! the two recovery mechanisms this layer grew later:
//!
//! * **Checkpointed re-offload** ([`RecoveryConfig::checkpoint_interval`]):
//!   while a node set runs remotely, the session periodically streams a
//!   compact snapshot of the offloaded state over the migration TCP
//!   path. When the remote crashes, the rebuild only has to cover the
//!   time since the last completed checkpoint instead of the full
//!   rebuild horizon — bounded re-compute instead of a cold rebuild.
//! * **Degraded-mode autonomy** ([`RecoveryConfig::degraded`]): when a
//!   blackout persists or re-offload keeps failing, the session drops
//!   the local pipeline to reduced fidelity (fewer SLAM particles,
//!   coarser DWA sampling) so the 200 ms control deadline keeps being
//!   met on vehicle silicon, and restores full fidelity — with
//!   hysteresis — once the cloud is healthy again.
//!
//! The `Default` configuration reproduces the pre-config behavior
//! byte for byte: same constants, checkpoints off, degraded mode off.

use lgv_types::prelude::*;

/// Reduced-fidelity local pipeline for riding out sustained outages.
///
/// Both thresholds are hysteresis guards: entry requires the stress
/// condition to hold continuously for [`DegradedConfig::trigger_after`],
/// and exit requires continuous health for
/// [`DegradedConfig::restore_hold`] — a link that flaps faster than
/// either window never toggles the mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedConfig {
    /// Continuous stress (blackout or exhausted re-offload backoff)
    /// required before fidelity drops.
    pub trigger_after: Duration,
    /// Continuous health required before full fidelity is restored.
    pub restore_hold: Duration,
    /// SLAM particle count while degraded (clamped to the configured
    /// count; the filter keeps its best particle across the switch).
    pub slam_particles: usize,
    /// DWA trajectory-sample budget while degraded.
    pub dwa_samples: u32,
}

impl Default for DegradedConfig {
    fn default() -> Self {
        DegradedConfig {
            trigger_after: Duration::from_secs(3),
            restore_hold: Duration::from_secs(5),
            slam_particles: 4,
            dwa_samples: 100,
        }
    }
}

/// Recovery-policy configuration, threaded through
/// [`MissionConfig`](crate::mission::MissionConfig) (and from there
/// through [`FleetConfig`](crate::fleet::FleetConfig)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// How long a crash-abandoned migration may rebuild remote state
    /// before the session falls back to cold local execution (and how
    /// long the cold fallback waits before clearing). PR 3's
    /// `REBUILD_HORIZON`.
    pub rebuild_horizon: Duration,
    /// Cloud-liveness heartbeat timeout (Algorithm 2 declares the
    /// remote dead after this much downlink silence while offloaded).
    pub heartbeat_timeout: Duration,
    /// First re-offload backoff after a failure; doubles per
    /// consecutive failure.
    pub backoff_base: Duration,
    /// Ceiling on the re-offload backoff.
    pub backoff_cap: Duration,
    /// Checkpoint cadence while offloaded. `None` disables
    /// checkpointing (the pre-checkpoint behavior).
    pub checkpoint_interval: Option<Duration>,
    /// Checkpoint size as a fraction of the full migration state
    /// (incremental snapshots are much smaller than a cold transfer).
    pub checkpoint_fraction: f64,
    /// Degraded-mode policy. `None` keeps full fidelity no matter how
    /// long the outage lasts (the pre-degraded behavior).
    pub degraded: Option<DegradedConfig>,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            rebuild_horizon: crate::session::REBUILD_HORIZON,
            heartbeat_timeout: Duration::from_millis(1500),
            backoff_base: Duration::from_secs(2),
            backoff_cap: Duration::from_secs(30),
            checkpoint_interval: None,
            checkpoint_fraction: 0.25,
            degraded: None,
        }
    }
}

impl RecoveryConfig {
    /// Enable checkpointed re-offload at the given cadence.
    pub fn with_checkpoints(mut self, interval: Duration) -> Self {
        self.checkpoint_interval = Some(interval);
        self
    }

    /// Enable degraded-mode autonomy with the given policy.
    pub fn with_degraded(mut self, degraded: DegradedConfig) -> Self {
        self.degraded = Some(degraded);
        self
    }

    /// The full recovery posture: 2 s checkpoints plus default
    /// degraded-mode hysteresis — what the chaos-fleet scenario runs.
    pub fn resilient() -> Self {
        RecoveryConfig::default()
            .with_checkpoints(Duration::from_secs(2))
            .with_degraded(DegradedConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_the_historical_constants() {
        let cfg = RecoveryConfig::default();
        assert_eq!(cfg.rebuild_horizon, Duration::from_secs(8));
        assert_eq!(cfg.heartbeat_timeout, Duration::from_millis(1500));
        assert_eq!(cfg.backoff_base, Duration::from_secs(2));
        assert_eq!(cfg.backoff_cap, Duration::from_secs(30));
        assert!(cfg.checkpoint_interval.is_none());
        assert!(cfg.degraded.is_none());
    }

    #[test]
    fn resilient_enables_both_mechanisms() {
        let cfg = RecoveryConfig::resilient();
        assert_eq!(cfg.checkpoint_interval, Some(Duration::from_secs(2)));
        let d = cfg.degraded.expect("degraded mode on");
        assert!(d.restore_hold > d.trigger_after, "hysteresis is asymmetric");
        assert!(d.slam_particles >= 1 && d.dwa_samples >= 12);
    }
}
