//! The five evaluation deployments (paper §VIII, Figs. 12–13).

use lgv_net::RemoteSite;
use lgv_sim::platform::{Platform, PlatformKind};
use serde::{Deserialize, Serialize};

/// One computation-deployment scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deployment {
    /// Display label (matches the paper's figure legends).
    pub label: &'static str,
    /// Remote endpoint (`None` = everything on the LGV).
    pub site: Option<RemoteSite>,
    /// Thread count used by remote parallel nodes.
    pub threads: u32,
}

impl Deployment {
    /// No offloading.
    pub fn local() -> Self {
        Deployment {
            label: "LGV",
            site: None,
            threads: 1,
        }
    }

    /// Edge gateway, no parallel optimization.
    pub fn edge() -> Self {
        Deployment {
            label: "Edge",
            site: Some(RemoteSite::EdgeGateway),
            threads: 1,
        }
    }

    /// Edge gateway with 8-thread parallelization.
    pub fn edge_8t() -> Self {
        Deployment {
            label: "Edge (8t)",
            site: Some(RemoteSite::EdgeGateway),
            threads: 8,
        }
    }

    /// Cloud server, no parallel optimization.
    pub fn cloud() -> Self {
        Deployment {
            label: "Cloud",
            site: Some(RemoteSite::CloudServer),
            threads: 1,
        }
    }

    /// Cloud server with 12-thread parallelization.
    pub fn cloud_12t() -> Self {
        Deployment {
            label: "Cloud (12t)",
            site: Some(RemoteSite::CloudServer),
            threads: 12,
        }
    }

    /// The full evaluation matrix of Figs. 12–13, in figure order.
    pub fn evaluation_set() -> [Deployment; 5] {
        [
            Deployment::local(),
            Deployment::edge(),
            Deployment::edge_8t(),
            Deployment::cloud(),
            Deployment::cloud_12t(),
        ]
    }

    /// The platform tier this deployment's remote site maps to (the
    /// LGV's own tier when not offloaded).
    pub fn platform_kind(&self) -> PlatformKind {
        match self.site {
            None => PlatformKind::Turtlebot3,
            Some(RemoteSite::EdgeGateway) => PlatformKind::EdgeGateway,
            Some(RemoteSite::CloudServer) => PlatformKind::CloudServer,
        }
    }

    /// The remote compute platform (the LGV's own when not offloaded).
    pub fn remote_platform(&self) -> Platform {
        Platform::preset(self.platform_kind())
    }

    /// The vehicle's own on-board platform (Table III tier 1).
    pub fn local_platform() -> Platform {
        Platform::preset(PlatformKind::Turtlebot3)
    }

    /// All three Table III platform tiers, in `PlatformKind::ALL`
    /// order (Turtlebot3, edge gateway, cloud server) — the single
    /// construction point for benches that sweep the tiers.
    pub fn tiers() -> [Platform; 3] {
        PlatformKind::ALL.map(Platform::preset)
    }

    /// Whether any offloading happens at all.
    pub fn offloaded(&self) -> bool {
        self.site.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_set_matches_figure_legend() {
        let set = Deployment::evaluation_set();
        assert_eq!(set.len(), 5);
        assert_eq!(set[0].label, "LGV");
        assert!(!set[0].offloaded());
        assert_eq!(set[2].threads, 8);
        assert_eq!(set[4].threads, 12);
        assert_eq!(set[4].site, Some(RemoteSite::CloudServer));
    }

    #[test]
    fn tiers_cover_table_three_in_order() {
        let tiers = Deployment::tiers();
        assert_eq!(tiers.len(), PlatformKind::ALL.len());
        for (t, k) in tiers.iter().zip(PlatformKind::ALL) {
            assert_eq!(t.kind, k);
        }
        assert_eq!(Deployment::local_platform().kind, PlatformKind::Turtlebot3);
    }

    #[test]
    fn platforms_resolve_by_site() {
        assert_eq!(
            Deployment::local().remote_platform().kind,
            PlatformKind::Turtlebot3
        );
        assert_eq!(
            Deployment::edge_8t().remote_platform().kind,
            PlatformKind::EdgeGateway
        );
        assert_eq!(
            Deployment::cloud().remote_platform().kind,
            PlatformKind::CloudServer
        );
    }
}
