//! Adaptive parallelism governor (paper §VIII-E).
//!
//! Fig. 14's observation: the real velocity only reaches the Eq. 2c
//! maximum on straight stretches; in obstacle-dense or turning phases
//! the gap `v_max − v_real` widens, and the extra cloud parallelism
//! that bought the high `v_max` is wasted. The paper suggests
//! "adopt\[ing\] the optimal offloading policy which has a minimum gap
//! based on different phases of environment — if there are more
//! obstacles … reduce the parallelization … \[to\] save the financial
//! cost and resource usage on the cloud servers."
//!
//! [`ThreadGovernor`] implements that policy: it tracks the recent
//! velocity-gap ratio and recommends a thread count between 1 and the
//! deployment maximum — full parallelism when the robot is actually
//! using the speed, scaled down when the environment is the binding
//! constraint.

use lgv_trace::{TraceEvent, Tracer};
use lgv_types::prelude::*;
use std::collections::VecDeque;

/// Governor configuration.
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Sliding window of velocity samples considered.
    pub window: usize,
    /// Gap ratio (`1 − v_real/v_max`) below which full parallelism is
    /// kept.
    pub low_gap: f64,
    /// Gap ratio above which parallelism drops to the minimum.
    pub high_gap: f64,
    /// Smallest thread count the governor will recommend.
    pub min_threads: u32,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            window: 25,
            low_gap: 0.15,
            high_gap: 0.6,
            min_threads: 1,
        }
    }
}

/// Tracks the velocity gap and recommends a thread count.
#[derive(Debug, Clone)]
pub struct ThreadGovernor {
    cfg: GovernorConfig,
    max_threads: u32,
    samples: VecDeque<f64>,
    tracer: Tracer,
}

impl ThreadGovernor {
    /// Governor for a deployment allowed up to `max_threads`.
    pub fn new(cfg: GovernorConfig, max_threads: u32) -> Self {
        assert!(max_threads >= 1);
        ThreadGovernor {
            cfg,
            max_threads,
            samples: VecDeque::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Route governor decisions to `tracer` (timestamps come from the
    /// tracer's shared virtual clock).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Record one control cycle's `(v_max, v_real)` pair.
    pub fn observe(&mut self, vmax: f64, v_real: f64) {
        if vmax <= 1e-6 {
            return;
        }
        let gap = (1.0 - v_real / vmax).clamp(0.0, 1.0);
        if self.samples.len() == self.cfg.window {
            self.samples.pop_front();
        }
        self.samples.push_back(gap);
    }

    /// Mean gap ratio over the window (0 until data arrives).
    pub fn mean_gap(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Recommended thread count: linear interpolation between the
    /// deployment maximum (gap ≤ low) and the minimum (gap ≥ high).
    pub fn recommend(&self) -> u32 {
        let threads = self.recommend_inner();
        self.tracer.emit_with(|| TraceEvent::GovernorDecision {
            mean_gap: self.mean_gap(),
            threads,
        });
        threads
    }

    fn recommend_inner(&self) -> u32 {
        // Be generous until the window has real data.
        if self.samples.len() < self.cfg.window / 2 {
            return self.max_threads;
        }
        let gap = self.mean_gap();
        let (lo, hi) = (self.cfg.low_gap, self.cfg.high_gap);
        if gap <= lo {
            self.max_threads
        } else if gap >= hi {
            self.cfg.min_threads.min(self.max_threads)
        } else {
            let t = 1.0 - (gap - lo) / (hi - lo);
            let span = (self.max_threads - self.cfg.min_threads) as f64;
            (self.cfg.min_threads as f64 + t * span).round() as u32
        }
    }

    /// Estimated relative compute-resource saving vs always running at
    /// the deployment maximum (0 = none, 1 = everything).
    pub fn resource_saving(&self) -> f64 {
        1.0 - self.recommend() as f64 / self.max_threads as f64
    }
}

/// Summarize per-phase velocity gaps from a mission trace — the data
/// behind Fig. 14's analysis.
pub fn gap_by_phase<F>(
    samples: &[(f64, f64, Point2)],
    classify: F,
) -> Vec<(&'static str, f64, f64, usize)>
where
    F: Fn(Point2) -> &'static str,
{
    let mut acc: Vec<(&'static str, f64, f64, usize)> = Vec::new();
    for &(vmax, real, pos) in samples {
        let phase = classify(pos);
        match acc.iter_mut().find(|(p, ..)| *p == phase) {
            Some(entry) => {
                entry.1 += vmax;
                entry.2 += real;
                entry.3 += 1;
            }
            None => acc.push((phase, vmax, real, 1)),
        }
    }
    for entry in &mut acc {
        entry.1 /= entry.3 as f64;
        entry.2 /= entry.3 as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor() -> ThreadGovernor {
        ThreadGovernor::new(GovernorConfig::default(), 12)
    }

    #[test]
    fn full_speed_keeps_full_parallelism() {
        let mut g = governor();
        for _ in 0..30 {
            g.observe(0.6, 0.58);
        }
        assert_eq!(g.recommend(), 12);
        assert_eq!(g.resource_saving(), 0.0);
    }

    #[test]
    fn large_gap_drops_to_minimum() {
        let mut g = governor();
        for _ in 0..30 {
            g.observe(0.6, 0.1);
        }
        assert_eq!(g.recommend(), 1);
        assert!(g.resource_saving() > 0.9);
    }

    #[test]
    fn intermediate_gap_interpolates() {
        let mut g = governor();
        for _ in 0..30 {
            g.observe(0.6, 0.36); // gap 0.4, between 0.15 and 0.6
        }
        let r = g.recommend();
        assert!(r > 1 && r < 12, "recommended {r}");
    }

    #[test]
    fn warmup_is_generous() {
        let mut g = governor();
        g.observe(0.6, 0.0);
        assert_eq!(g.recommend(), 12, "no throttling before the window fills");
    }

    #[test]
    fn zero_vmax_samples_are_ignored() {
        let mut g = governor();
        for _ in 0..30 {
            g.observe(0.0, 0.0);
        }
        assert_eq!(g.mean_gap(), 0.0);
        assert_eq!(g.recommend(), 12);
    }

    #[test]
    fn gap_shrinks_recommendation_monotonically() {
        let mut prev = u32::MAX;
        for gap in [0.0, 0.2, 0.3, 0.4, 0.5, 0.7] {
            let mut g = governor();
            for _ in 0..30 {
                g.observe(1.0, 1.0 - gap);
            }
            let r = g.recommend();
            assert!(r <= prev, "recommendation must not increase with gap");
            prev = r;
        }
    }

    #[test]
    fn gap_by_phase_averages() {
        let samples = vec![
            (0.6, 0.6, Point2::new(1.0, 0.0)),
            (0.6, 0.2, Point2::new(11.0, 0.0)),
            (0.6, 0.4, Point2::new(11.0, 0.0)),
        ];
        let phases = gap_by_phase(&samples, |p| if p.x < 10.0 { "open" } else { "dense" });
        assert_eq!(phases.len(), 2);
        let dense = phases.iter().find(|(p, ..)| *p == "dense").unwrap();
        assert!((dense.1 - 0.6).abs() < 1e-12);
        assert!((dense.2 - 0.3).abs() < 1e-12);
        assert_eq!(dense.3, 2);
    }
}
