//! Algorithm 1: the fine-grained migration strategy (paper §IV-B).
//!
//! * **EC (energy) goal** — migrate every ECN (T1 + T3) to the remote
//!   server; the lightweight rest (T2 + T4) stays on the LGV.
//! * **MCT (time) goal** — submit all ECNs, then compare the local VDP
//!   time `T_l^v` with the cloud VDP time `T_c` (remote processing +
//!   network latency). If the network makes the cloud VDP *slower*
//!   (`T_c > T_l^v`), migrate the T3 nodes back to the LGV — remote
//!   T1 nodes (e.g. SLAM) stay offloaded since they are off the
//!   critical path.
//!
//! Either way, the maximum velocity is re-derived from the winning VDP
//! makespan via Eq. 2c (`velocityOA`).
//!
//! Extension (paper §IX, "other robotic devices"): a [`PinPolicy`]
//! keeps designated safety-critical nodes on the vehicle regardless of
//! the goal.

use crate::classify::Classification;
use crate::model::{Goal, VelocityModel};
use lgv_types::prelude::*;
use serde::{Deserialize, Serialize};

/// Safety-pinning extension: these nodes never leave the vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PinPolicy {
    /// Nodes pinned to the LGV.
    pub pinned_local: NodeSet,
}

impl PinPolicy {
    /// Pin nothing (the paper's LGV evaluation).
    pub fn none() -> Self {
        PinPolicy::default()
    }

    /// Pin the whole control stage (the paper's suggestion for
    /// faster vehicles: keep obstacle avoidance on board).
    pub fn safety_critical() -> Self {
        PinPolicy {
            pinned_local: NodeSet::from_iter([NodeKind::PathTracking, NodeKind::VelocityMux]),
        }
    }
}

/// The outcome of one strategy evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementPlan {
    /// Nodes to run on the remote server.
    pub remote: NodeSet,
    /// The VDP makespan the plan expects (the min of local/cloud for
    /// MCT; the cloud VDP for EC).
    pub expected_vdp: Duration,
    /// The Eq. 2c maximum velocity for that makespan.
    pub max_velocity: f64,
}

impl PlacementPlan {
    /// Placement of a specific node under this plan.
    pub fn placement(&self, kind: NodeKind) -> Placement {
        if self.remote.contains(kind) {
            Placement::Remote
        } else {
            Placement::Local
        }
    }
}

/// Algorithm 1.
#[derive(Debug, Clone)]
pub struct OffloadStrategy {
    /// Optimization goal `G`.
    pub goal: Goal,
    /// Eq. 2c parameters.
    pub velocity: VelocityModel,
    /// Safety pinning (extension).
    pub pins: PinPolicy,
}

impl OffloadStrategy {
    /// Strategy with default velocity model and no pins.
    ///
    /// ```
    /// use lgv_offload::classify::{classify, table2_without_map};
    /// use lgv_offload::model::Goal;
    /// use lgv_offload::strategy::OffloadStrategy;
    /// use lgv_types::{Duration, NodeKind};
    ///
    /// let class = classify(&table2_without_map());
    /// let strategy = OffloadStrategy::new(Goal::MissionTime);
    /// // Good network: the whole ECN set goes to the server.
    /// let plan = strategy.decide(&class, Duration::from_millis(600), Duration::from_millis(60));
    /// assert!(plan.remote.contains(NodeKind::Slam));
    /// assert!(plan.remote.contains(NodeKind::PathTracking));
    /// // Bad network: the VDP members come home, SLAM stays remote.
    /// let plan = strategy.decide(&class, Duration::from_millis(600), Duration::from_millis(900));
    /// assert!(plan.remote.contains(NodeKind::Slam));
    /// assert!(!plan.remote.contains(NodeKind::PathTracking));
    /// ```
    pub fn new(goal: Goal) -> Self {
        OffloadStrategy {
            goal,
            velocity: VelocityModel::default(),
            pins: PinPolicy::none(),
        }
    }

    /// Evaluate Algorithm 1.
    ///
    /// * `class` — the T1–T4 classification;
    /// * `local_vdp` — `T_l^v`: VDP makespan with all VDP nodes local;
    /// * `cloud_vdp` — `T_c`: VDP makespan with T3 offloaded,
    ///   *including* network latency.
    pub fn decide(
        &self,
        class: &Classification,
        local_vdp: Duration,
        cloud_vdp: Duration,
    ) -> PlacementPlan {
        // "submit all nodes ∈ ECN to the remote server"
        let mut remote = class.ecn;

        let mut expected_vdp = cloud_vdp;
        if self.goal == Goal::MissionTime && cloud_vdp > local_vdp {
            // "if Tc > Tl^v and G == MCT: migrate T3 back to the LGV"
            remote = remote.difference(class.t3);
            expected_vdp = local_vdp;
        }

        // Safety extension: pinned nodes stay local no matter what.
        remote = remote.difference(self.pins.pinned_local);
        if remote.intersection(class.t3) != class.t3 {
            // Any T3 node forced local puts the local VDP time back on
            // the critical path.
            expected_vdp = expected_vdp.max(local_vdp);
        }

        PlacementPlan {
            remote,
            expected_vdp,
            max_velocity: self.velocity.vmax(expected_vdp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, table2_with_map, table2_without_map};

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn energy_goal_offloads_all_ecns() {
        let class = classify(&table2_without_map());
        let s = OffloadStrategy::new(Goal::Energy);
        // Even with terrible network, EC keeps ECNs remote.
        let plan = s.decide(&class, ms(600), ms(900));
        assert!(plan.remote.contains(NodeKind::Slam));
        assert!(plan.remote.contains(NodeKind::CostmapGen));
        assert!(plan.remote.contains(NodeKind::PathTracking));
        assert!(!plan.remote.contains(NodeKind::Exploration));
        assert!(!plan.remote.contains(NodeKind::VelocityMux));
    }

    #[test]
    fn mct_goal_offloads_when_network_is_good() {
        let class = classify(&table2_with_map());
        let s = OffloadStrategy::new(Goal::MissionTime);
        let plan = s.decide(&class, ms(600), ms(60));
        assert!(plan.remote.contains(NodeKind::CostmapGen));
        assert!(plan.remote.contains(NodeKind::PathTracking));
        assert_eq!(plan.expected_vdp, ms(60));
        // Offloading must raise the velocity.
        let local_plan = s.decide(&class, ms(600), ms(900));
        assert!(plan.max_velocity > 2.0 * local_plan.max_velocity);
    }

    #[test]
    fn mct_goal_migrates_t3_back_under_bad_network() {
        let class = classify(&table2_without_map());
        let s = OffloadStrategy::new(Goal::MissionTime);
        let plan = s.decide(&class, ms(600), ms(900));
        // T3 (CostmapGen, PathTracking) back to the LGV…
        assert!(!plan.remote.contains(NodeKind::CostmapGen));
        assert!(!plan.remote.contains(NodeKind::PathTracking));
        // …but T1 (SLAM) stays offloaded: off the critical path.
        assert!(plan.remote.contains(NodeKind::Slam));
        assert_eq!(plan.expected_vdp, ms(600));
    }

    #[test]
    fn velocity_follows_eq_2c() {
        let class = classify(&table2_with_map());
        let s = OffloadStrategy::new(Goal::MissionTime);
        let plan = s.decide(&class, ms(600), ms(50));
        assert!((plan.max_velocity - s.velocity.vmax(ms(50))).abs() < 1e-12);
    }

    #[test]
    fn pinning_keeps_safety_nodes_local() {
        let class = classify(&table2_with_map());
        let s = OffloadStrategy {
            goal: Goal::MissionTime,
            velocity: VelocityModel::default(),
            pins: PinPolicy::safety_critical(),
        };
        let plan = s.decide(&class, ms(600), ms(50));
        assert!(!plan.remote.contains(NodeKind::PathTracking));
        assert!(!plan.remote.contains(NodeKind::VelocityMux));
        // CostmapGen (unpinned T3) may still go remote.
        assert!(plan.remote.contains(NodeKind::CostmapGen));
        // With part of the VDP forced local, the expected makespan
        // reverts to the local bound.
        assert_eq!(plan.expected_vdp, ms(600));
    }

    #[test]
    fn placement_accessor() {
        let class = classify(&table2_with_map());
        let plan = OffloadStrategy::new(Goal::Energy).decide(&class, ms(600), ms(60));
        assert_eq!(plan.placement(NodeKind::PathTracking), Placement::Remote);
        assert_eq!(plan.placement(NodeKind::VelocityMux), Placement::Local);
    }

    #[test]
    fn equal_times_prefer_offloading() {
        // Tc == Tl^v is not "Tc > Tl^v": stay offloaded.
        let class = classify(&table2_with_map());
        let s = OffloadStrategy::new(Goal::MissionTime);
        let plan = s.decide(&class, ms(100), ms(100));
        assert!(plan.remote.contains(NodeKind::PathTracking));
    }
}
