//! Property-based tests for the offloading framework: Algorithm 1/2
//! invariants and Eq. 2c structure under arbitrary inputs.

use lgv_offload::classify::{classify, NodeProfile};
use lgv_offload::model::{max_velocity_oa, Goal, VelocityModel};
use lgv_offload::netctl::{NetControl, NetControlConfig, NetDecision};
use lgv_offload::profiler::Profiler;
use lgv_offload::strategy::{OffloadStrategy, PinPolicy};
use lgv_types::prelude::*;
use proptest::prelude::*;

fn arbitrary_profiles() -> impl Strategy<Value = Vec<NodeProfile>> {
    proptest::collection::vec(0.0f64..5e9, 7).prop_map(|cycles| {
        NodeKind::ALL
            .iter()
            .zip(cycles)
            .map(|(&kind, c)| NodeProfile {
                kind,
                work: Work::serial(c),
                rate_hz: 5.0,
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn classification_quadrants_always_partition(profiles in arbitrary_profiles()) {
        let c = classify(&profiles);
        let union = c.t1.union(c.t2).union(c.t3).union(c.t4);
        prop_assert_eq!(union.len(), 7, "quadrants must cover all profiled nodes");
        // Pairwise disjoint.
        prop_assert!(c.t1.intersection(c.t2).is_empty());
        prop_assert!(c.t1.intersection(c.t3).is_empty());
        prop_assert!(c.t1.intersection(c.t4).is_empty());
        prop_assert!(c.t2.intersection(c.t3).is_empty());
        prop_assert!(c.t2.intersection(c.t4).is_empty());
        prop_assert!(c.t3.intersection(c.t4).is_empty());
        // Reconstruction identities from Fig. 4.
        prop_assert_eq!(c.t1.union(c.t3), c.ecn);
        prop_assert_eq!(c.t2.union(c.t3), c.vdp);
    }

    #[test]
    fn strategy_never_offloads_non_ecn_nodes(
        profiles in arbitrary_profiles(),
        local_ms in 1u64..2000,
        cloud_ms in 1u64..2000,
        mct in any::<bool>(),
    ) {
        let c = classify(&profiles);
        let goal = if mct { Goal::MissionTime } else { Goal::Energy };
        let plan = OffloadStrategy::new(goal).decide(
            &c,
            Duration::from_millis(local_ms),
            Duration::from_millis(cloud_ms),
        );
        // Fine-grained migration: only ECNs ever leave the vehicle.
        prop_assert!(plan.remote.difference(c.ecn).is_empty());
        // T1 (off-path ECNs) are always offloaded under either goal.
        prop_assert!(c.t1.difference(plan.remote).is_empty());
    }

    #[test]
    fn mct_branch_matches_the_time_comparison(
        profiles in arbitrary_profiles(),
        local_ms in 1u64..2000,
        cloud_ms in 1u64..2000,
    ) {
        let c = classify(&profiles);
        let plan = OffloadStrategy::new(Goal::MissionTime).decide(
            &c,
            Duration::from_millis(local_ms),
            Duration::from_millis(cloud_ms),
        );
        if cloud_ms > local_ms {
            prop_assert!(plan.remote.intersection(c.t3).is_empty(), "T3 must migrate back");
            prop_assert_eq!(plan.expected_vdp, Duration::from_millis(local_ms));
        } else {
            prop_assert!(c.t3.difference(plan.remote).is_empty(), "T3 stays offloaded");
        }
    }

    #[test]
    fn pinned_nodes_never_leave(
        profiles in arbitrary_profiles(),
        local_ms in 1u64..2000,
        cloud_ms in 1u64..2000,
        pin_bits in 0u8..128,
    ) {
        let pinned = NodeSet::from_iter(
            NodeKind::ALL.iter().enumerate().filter(|(i, _)| pin_bits & (1 << i) != 0).map(|(_, &k)| k),
        );
        let c = classify(&profiles);
        let strategy = OffloadStrategy {
            goal: Goal::Energy,
            velocity: VelocityModel::default(),
            pins: PinPolicy { pinned_local: pinned },
        };
        let plan = strategy.decide(&c, Duration::from_millis(local_ms), Duration::from_millis(cloud_ms));
        prop_assert!(plan.remote.intersection(pinned).is_empty());
    }

    #[test]
    fn eq2c_velocity_is_monotone_and_bounded(
        tp1 in 0.0f64..5.0, tp2 in 0.0f64..5.0, a in 0.5f64..10.0, d in 0.01f64..1.0,
    ) {
        let (lo, hi) = if tp1 < tp2 { (tp1, tp2) } else { (tp2, tp1) };
        let v_fast = max_velocity_oa(lo, a, d);
        let v_slow = max_velocity_oa(hi, a, d);
        prop_assert!(v_fast >= v_slow, "faster pipeline must allow faster driving");
        // Bounded by the zero-latency kinematic limit.
        prop_assert!(v_fast <= (2.0 * a * d).sqrt() + 1e-12);
        prop_assert!(v_slow > 0.0);
    }

    #[test]
    fn profiler_vdp_makespan_is_additive(
        cg_ms in 1u64..500, pt_ms in 1u64..500, mux_ms in 0u64..5, rtt_ms in 0u64..200,
    ) {
        let mut p = Profiler::new();
        p.record_local(NodeKind::CostmapGen, Duration::from_millis(cg_ms));
        p.record_local(NodeKind::PathTracking, Duration::from_millis(pt_ms));
        p.record_local(NodeKind::VelocityMux, Duration::from_millis(mux_ms));
        p.record_remote(NodeKind::CostmapGen, Duration::from_millis(cg_ms / 10));
        p.record_remote(NodeKind::PathTracking, Duration::from_millis(pt_ms / 10));
        p.record_rtt(Duration::from_millis(rtt_ms));
        let local = p.local_vdp_time();
        prop_assert_eq!(local, Duration::from_millis(cg_ms + pt_ms + mux_ms));
        let remote_set = NodeSet::from_iter([NodeKind::CostmapGen, NodeKind::PathTracking]);
        let cloud = p.cloud_vdp_time(remote_set);
        prop_assert_eq!(
            cloud,
            Duration::from_millis(cg_ms / 10 + pt_ms / 10 + mux_ms + rtt_ms)
        );
    }

    #[test]
    fn netctl_never_switches_to_the_current_placement(
        bw in 0.0f64..10.0, dir in -1.0f64..1.0, remote in any::<bool>(), at_s in 3u64..100,
    ) {
        let mut c = NetControl::new(NetControlConfig::default());
        // Pin warm-up start.
        let _ = c.decide(SimTime::EPOCH, 5.0, 0.0, remote);
        let d = c.decide(SimTime::EPOCH + Duration::from_secs(at_s), bw, dir, remote);
        match d {
            NetDecision::InvokeLocal => prop_assert!(remote),
            NetDecision::InvokeRemote => prop_assert!(!remote),
            NetDecision::Keep => {}
        }
    }

    #[test]
    fn netctl_respects_dwell_under_any_inputs(
        seq in proptest::collection::vec((0.0f64..10.0, -1.0f64..1.0), 1..60),
    ) {
        let cfg = NetControlConfig::default();
        let mut c = NetControl::new(cfg);
        let mut remote = true;
        let mut last_switch: Option<u64> = None;
        for (k, &(bw, dir)) in seq.iter().enumerate() {
            let now_ms = 200 * k as u64;
            let d = c.decide(SimTime::EPOCH + Duration::from_millis(now_ms), bw, dir, remote);
            if d != NetDecision::Keep {
                if let Some(prev) = last_switch {
                    prop_assert!(
                        now_ms - prev >= 1500,
                        "switches {prev} and {now_ms} violate the dwell"
                    );
                }
                last_switch = Some(now_ms);
                remote = d == NetDecision::InvokeRemote;
            }
        }
    }
}
