//! Acceptance tests for the recovery stack: checkpointed re-offload,
//! degraded-mode autonomy, and fault-composition determinism.

use lgv_net::fault::{CloudFaultSchedule, FaultKind, FaultSchedule};
use lgv_offload::deploy::Deployment;
use lgv_offload::fleet::{run_fleet, FleetConfig};
use lgv_offload::mission::{self, MissionConfig, Workload};
use lgv_offload::model::VelocityModel;
use lgv_offload::recovery::{DegradedConfig, RecoveryConfig};
use lgv_sim::world::WorldBuilder;
use lgv_trace::{JsonlSink, TraceAnalysis, TraceReader, Tracer};
use lgv_types::prelude::*;
use proptest::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex};

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run_analyzed(cfg: MissionConfig) -> (mission::MissionReport, TraceAnalysis) {
    let buf = SharedBuf::default();
    let tracer = Tracer::enabled();
    tracer.attach(JsonlSink::new(Box::new(buf.clone())));
    let report = mission::run_traced(cfg, tracer);
    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("trace is UTF-8");
    let records = TraceReader::parse_str(&text).expect("trace parses");
    (report, TraceAnalysis::from_records(&records))
}

/// A corridor long enough (~45 s of virtual time) that a failure at
/// t = 8 s lands mid-flight and the full recovery arc completes
/// before the goal.
fn corridor(faults: FaultSchedule, recovery: RecoveryConfig) -> MissionConfig {
    let world = WorldBuilder::new(16.0, 4.0, 0.05).walls().build();
    let mut cfg = MissionConfig::compact_lab(Deployment::edge_8t(), Workload::Navigation);
    cfg.world = world;
    cfg.start = Pose2D::new(1.0, 2.0, 0.0);
    cfg.nav_goal = Point2::new(14.5, 2.0);
    cfg.wap = Point2::new(14.5, 2.0);
    cfg.max_time = Duration::from_secs(240);
    cfg.velocity = VelocityModel {
        hw_cap: 0.35,
        ..VelocityModel::default()
    };
    cfg.seed = 13;
    cfg.faults = faults;
    cfg.recovery = recovery;
    cfg
}

#[test]
fn checkpointed_recovery_beats_cold_rebuild() {
    let crash = FaultSchedule::none().with(8.0, 10.0, FaultKind::RemoteCrash);
    let cold = mission::run(corridor(crash.clone(), RecoveryConfig::default()));
    let (ckpt, analysis) = run_analyzed(corridor(
        crash,
        RecoveryConfig::default().with_checkpoints(Duration::from_secs(2)),
    ));
    assert!(cold.completed && ckpt.completed);
    let recovery = analysis.recovery_report().expect("checkpoints traced");
    assert!(recovery.checkpoints > 0, "checkpoints should complete");
    assert!(recovery.checkpoint_bytes > 0);
    // Same crash, same seed: resuming from the last snapshot instead
    // of a cold rebuild must strictly shorten the mission.
    assert!(
        ckpt.time.total() < cold.time.total(),
        "ckpt {:?} !< cold {:?}",
        ckpt.time.total(),
        cold.time.total()
    );
}

#[test]
fn degraded_mode_drops_no_cycles_under_sustained_blackout() {
    let blackout = FaultSchedule::none().with(8.0, 20.0, FaultKind::Blackout);
    let (report, analysis) = run_analyzed(corridor(
        blackout,
        RecoveryConfig::default().with_degraded(DegradedConfig::default()),
    ));
    assert!(report.completed, "mission rides out the blackout");
    let recovery = analysis.recovery_report().expect("degrade events traced");
    assert!(
        recovery.degrade_entries >= 1,
        "blackout should trigger degraded mode"
    );
    assert!(recovery.degraded_ns > 0);
    assert_eq!(
        recovery.missed_cycles, 0,
        "reduced fidelity must keep every 200 ms deadline"
    );
}

#[test]
fn degraded_mode_restores_full_fidelity_after_recovery() {
    let blackout = FaultSchedule::none().with(8.0, 12.0, FaultKind::Blackout);
    let (report, analysis) = run_analyzed(corridor(
        blackout,
        RecoveryConfig::default().with_degraded(DegradedConfig::default()),
    ));
    assert!(report.completed);
    let recovery = analysis.recovery_report().expect("degrade events traced");
    // Entered during the blackout, exited after the restore hold: the
    // degraded span is bounded well below the whole mission.
    assert!(recovery.degrade_entries >= 1);
    assert!(recovery.degraded_fraction < 0.9, "mode must not stick");
}

#[test]
fn faulted_fleet_runs_are_seed_stable() {
    let mission = |()| {
        let mut cfg = corridor(
            FaultSchedule::randomized(21, Duration::from_secs(20)),
            RecoveryConfig::resilient(),
        );
        cfg.max_time = Duration::from_secs(120);
        FleetConfig::new(cfg, 2)
            .with_cloud_faults(CloudFaultSchedule::randomized(21, Duration::from_secs(20)))
    };
    let a = run_fleet(mission(()));
    let b = run_fleet(mission(()));
    let fa: Vec<u64> = a.vehicles.iter().map(|v| v.fingerprint()).collect();
    let fb: Vec<u64> = b.vehicles.iter().map(|v| v.fingerprint()).collect();
    assert_eq!(fa, fb, "identical seeds must replay byte-identically");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any composition of randomized channel and cloud fault
    /// schedules terminates every mission in bounded virtual time
    /// (completion or a clean abort before `max_time`), and replays
    /// byte-identically from its seed.
    #[test]
    fn composed_fault_schedules_terminate_and_replay(seed in 0u64..1_000) {
        let cfg = || {
            let mut c = MissionConfig::compact_lab(Deployment::edge_8t(), Workload::Navigation);
            c.seed = seed;
            c.faults = FaultSchedule::randomized(seed, Duration::from_secs(20));
            c.recovery = RecoveryConfig::resilient();
            FleetConfig::new(c, 2)
                .with_cloud_faults(CloudFaultSchedule::randomized(seed, Duration::from_secs(20)))
        };
        let a = run_fleet(cfg());
        // Bounded virtual time: every vehicle ends at or before the
        // 120 s cap, whatever the schedules composed to.
        for v in &a.vehicles {
            prop_assert!(v.time.total() <= Duration::from_secs(120));
        }
        let b = run_fleet(cfg());
        let fa: Vec<u64> = a.vehicles.iter().map(|v| v.fingerprint()).collect();
        let fb: Vec<u64> = b.vehicles.iter().map(|v| v.fingerprint()).collect();
        prop_assert_eq!(fa, fb);
    }
}
