//! Fleet determinism guarantees (the multi-tenancy refactor's safety
//! net): a fleet of one is byte-identical to the single-vehicle
//! runner, and fleet runs are exactly reproducible from their seed.

use lgv_offload::deploy::Deployment;
use lgv_offload::fleet::{run_fleet, CloudPolicy, ElasticConfig, FleetConfig, RegionTopology};
use lgv_offload::mission::{self, MissionConfig, Workload};

/// Every byte the fleet driver controls, flattened for equality
/// checks: per-vehicle fingerprints plus the Debug rendering of the
/// aggregate and per-region stats.
fn fleet_digest(report: &lgv_offload::fleet::FleetReport) -> String {
    let mut s = String::new();
    for v in &report.vehicles {
        s.push_str(&format!("{:016x}\n", v.fingerprint()));
    }
    s.push_str(&format!(
        "cloud={:?}\nuplink={:?}\nregions={:?}\nrounds={}\n",
        report.cloud, report.uplink, report.regions, report.rounds
    ));
    s
}

fn base() -> MissionConfig {
    MissionConfig::compact_lab(Deployment::edge_8t(), Workload::Navigation)
}

#[test]
fn fleet_of_one_is_byte_identical_to_single_vehicle() {
    let solo = mission::run(base());
    let fleet = run_fleet(FleetConfig::new(base(), 1));
    assert_eq!(fleet.vehicles.len(), 1);
    // Same fingerprint = same Debug rendering = every field, every
    // trace sample byte-identical. The fleet's contention hooks must
    // be exact no-ops for a lone tenant.
    assert_eq!(
        fleet.vehicles[0].fingerprint(),
        solo.fingerprint(),
        "size-1 fleet diverged from mission::run: {} vs {}",
        fleet.vehicles[0].reason,
        solo.reason
    );
    // The lone tenant must never have been charged for contention.
    let cloud = fleet.cloud.expect("offloaded fleet tracks the cloud");
    assert_eq!(cloud.delayed, 0);
    let uplink = fleet.uplink.expect("offloaded fleet tracks the WAP");
    assert_eq!(uplink.contended_sends, 0);
}

#[test]
fn fleet_runs_are_seed_stable() {
    let a = run_fleet(FleetConfig::new(base(), 2));
    let b = run_fleet(FleetConfig::new(base(), 2));
    assert_eq!(a.rounds, b.rounds);
    for (va, vb) in a.vehicles.iter().zip(&b.vehicles) {
        assert_eq!(va.fingerprint(), vb.fingerprint());
    }
    let (ca, cb) = (a.cloud.unwrap(), b.cloud.unwrap());
    assert_eq!(ca.admissions, cb.admissions);
    assert_eq!(ca.total_queue_delay, cb.total_queue_delay);
    assert_eq!(a.uplink.unwrap(), b.uplink.unwrap());
}

/// The CI quick gate (scripts/ci.sh stage 6): a fleet of four on one
/// edge box, run twice, must agree on every per-vehicle fingerprint
/// and every shared-resource counter — while actually exercising
/// contention on both shared resources.
#[test]
#[ignore = "slow; run by scripts/ci.sh"]
fn fleet_of_four_is_deterministic_under_contention() {
    let a = run_fleet(FleetConfig::new(base(), 4));
    let b = run_fleet(FleetConfig::new(base(), 4));
    assert_eq!(a.vehicles.len(), 4);
    for (va, vb) in a.vehicles.iter().zip(&b.vehicles) {
        assert_eq!(va.fingerprint(), vb.fingerprint());
    }
    let (ca, cb) = (a.cloud.unwrap(), b.cloud.unwrap());
    assert_eq!(ca.admissions, cb.admissions);
    assert_eq!(ca.delayed, cb.delayed);
    assert_eq!(ca.total_queue_delay, cb.total_queue_delay);
    assert_eq!(a.uplink.unwrap(), b.uplink.unwrap());
    // Four tenants' governor-chosen threads on an 8-thread edge box:
    // the queueing and spectrum models must both actually bite.
    assert!(ca.delayed > 0, "no cloud queueing with four tenants?");
    assert!(
        a.uplink.unwrap().contended_sends > 0,
        "no WAP contention with four uplinks?"
    );
}

/// The elastic identity gate: a fleet of one under an elastic
/// scheduler capped at one replica must be byte-identical to both the
/// fixed-cloud fleet and the single-vehicle runner — the elastic
/// hooks, like the contention hooks, are exact no-ops for a lone
/// tenant.
#[test]
fn elastic_fleet_of_one_is_byte_identical_to_fixed() {
    let solo = mission::run(base());
    let elastic = run_fleet(FleetConfig::new(base(), 1).with_cloud(CloudPolicy::Elastic(
        ElasticConfig::balanced().single_replica(),
    )));
    assert_eq!(
        elastic.vehicles[0].fingerprint(),
        solo.fingerprint(),
        "size-1 elastic fleet diverged from mission::run"
    );
    let cloud = elastic.cloud.expect("offloaded fleet tracks the cloud");
    assert_eq!(cloud.delayed, 0);
    assert_eq!(cloud.batches, 0, "a lone tenant has no one to batch with");
    assert_eq!(cloud.scale_ups + cloud.scale_downs, 0, "one-replica cap");
    assert!(cloud.replica_seconds > 0.0, "the ledger still accrues cost");
}

/// The sharded-determinism gate: a regionally sharded fleet must
/// produce byte-identical reports at any thread count — the pool
/// groups share no mutable state and the round barrier makes
/// intra-round order immaterial.
#[test]
fn sharded_fleet_is_byte_identical_across_thread_counts() {
    let topo = RegionTopology::sharded(3).with_cloud_pools(2);
    let run = |threads: usize| {
        run_fleet(
            FleetConfig::new(base(), 6)
                .with_topology(topo)
                .with_threads(threads),
        )
    };
    let serial = run(1);
    assert_eq!(serial.regions.len(), 3);
    assert!(
        serial.wan_crossings() > 0,
        "region 2 is served by pool 0 and must pay WAN hops"
    );
    let d1 = fleet_digest(&serial);
    assert_eq!(d1, fleet_digest(&run(2)), "threads=2 diverged from serial");
    assert_eq!(d1, fleet_digest(&run(8)), "threads=8 diverged from serial");
}

/// The 1-region identity gate: sharding with a single region (even
/// stepped by several threads) must be byte-identical to the plain
/// unsharded fleet — per-vehicle fingerprints (FNV-1a) and aggregate
/// counters alike.
#[test]
fn one_region_fleet_is_identical_to_unsharded() {
    let unsharded = run_fleet(FleetConfig::new(base(), 3));
    let sharded = run_fleet(
        FleetConfig::new(base(), 3)
            .with_topology(RegionTopology::sharded(1))
            .with_threads(2),
    );
    for (u, s) in unsharded.vehicles.iter().zip(&sharded.vehicles) {
        assert_eq!(u.fingerprint(), s.fingerprint());
    }
    assert_eq!(unsharded.cloud.unwrap(), sharded.cloud.unwrap());
    assert_eq!(unsharded.uplink.unwrap(), sharded.uplink.unwrap());
    assert_eq!(unsharded.rounds, sharded.rounds);
    assert_eq!(sharded.regions.len(), 1);
    assert_eq!(sharded.wan_crossings(), 0);
}

/// Cross-region admissions pay the configured WAN hop: with two
/// regions on one pool, region 1's vehicles cross on every admission
/// and their missions stretch relative to the hop-free topology.
#[test]
fn wan_hop_charges_cross_region_admissions() {
    use lgv_types::prelude::Duration;
    let hop = Duration::from_millis(10);
    let crossed = run_fleet(
        FleetConfig::new(base(), 4).with_topology(
            RegionTopology::sharded(2)
                .with_cloud_pools(1)
                .with_wan_hop(hop),
        ),
    );
    let free = run_fleet(
        FleetConfig::new(base(), 4).with_topology(
            RegionTopology::sharded(2)
                .with_cloud_pools(1)
                .with_wan_hop(Duration::ZERO),
        ),
    );
    assert!(crossed.wan_crossings() > 0);
    assert_eq!(free.wan_crossings(), 0);
    // Only region 1 (served by pool 0, homed in region 0) crosses.
    assert_eq!(crossed.regions[0].wan_crossings, 0);
    assert!(crossed.regions[1].wan_crossings > 0);
    assert!(crossed.regions[1].remote_pool);
    let expected = Duration::from_nanos(hop.as_nanos() * crossed.regions[1].wan_crossings);
    assert_eq!(
        crossed.regions[1].wan_extra, expected,
        "surcharge must be exactly crossings × hop"
    );
    // The stretched region's vehicles take at least as long as in the
    // hop-free run (identical seeds, strictly added latency).
    let t_crossed: f64 = crossed.vehicles[2..]
        .iter()
        .map(|v| v.time.total().as_secs_f64())
        .sum();
    let t_free: f64 = free.vehicles[2..]
        .iter()
        .map(|v| v.time.total().as_secs_f64())
        .sum();
    assert!(
        t_crossed >= t_free,
        "WAN-charged vehicles finished faster ({t_crossed:.3}s) than hop-free ({t_free:.3}s)"
    );
}

/// The sharded CI gate (scripts/ci.sh stage 6): a 12-vehicle fleet
/// over 4 regions and 2 pools, stepped at three thread counts, must
/// agree byte-for-byte — determinism at fleet scale, under genuine
/// multi-region contention and WAN charging.
#[test]
#[ignore = "slow; run by scripts/ci.sh"]
fn sharded_fleet_scale_gate_is_thread_invariant() {
    let topo = RegionTopology::sharded(4).with_cloud_pools(2);
    let run = |threads: usize| {
        run_fleet(
            FleetConfig::new(base(), 12)
                .with_topology(topo)
                .with_threads(threads),
        )
    };
    let serial = run(1);
    assert_eq!(serial.completed(), 12);
    assert!(serial.wan_crossings() > 0);
    let cloud = serial.cloud.unwrap();
    assert!(cloud.delayed > 0, "12 tenants on 2 pools must queue");
    let d1 = fleet_digest(&serial);
    assert_eq!(d1, fleet_digest(&run(2)), "threads=2 diverged");
    assert_eq!(d1, fleet_digest(&run(8)), "threads=8 diverged");
}

/// The elastic CI gate (scripts/ci.sh stage 6): an elastic fleet of
/// four is exactly reproducible, actually batches same-stage work,
/// and its mean queueing delay does not exceed the fixed scheduler's.
#[test]
#[ignore = "slow; run by scripts/ci.sh"]
fn elastic_fleet_is_deterministic_and_cheaper_than_fixed() {
    let policy = CloudPolicy::Elastic(ElasticConfig::balanced());
    let a = run_fleet(FleetConfig::new(base(), 4).with_cloud(policy));
    let b = run_fleet(FleetConfig::new(base(), 4).with_cloud(policy));
    for (va, vb) in a.vehicles.iter().zip(&b.vehicles) {
        assert_eq!(va.fingerprint(), vb.fingerprint());
    }
    let (ca, cb) = (a.cloud.unwrap(), b.cloud.unwrap());
    assert_eq!(ca, cb, "elastic ledger must be deterministic");
    assert!(ca.batches > 0, "four tenants in lockstep must batch");
    assert!(ca.replica_seconds > 0.0);

    let fixed = run_fleet(FleetConfig::new(base(), 4)).cloud.unwrap();
    assert!(
        ca.mean_queue_delay_secs() <= fixed.mean_queue_delay_secs(),
        "elastic ({:.6}s) must not queue worse than fixed ({:.6}s)",
        ca.mean_queue_delay_secs(),
        fixed.mean_queue_delay_secs()
    );
}
