//! Fleet determinism guarantees (the multi-tenancy refactor's safety
//! net): a fleet of one is byte-identical to the single-vehicle
//! runner, and fleet runs are exactly reproducible from their seed.

use lgv_offload::deploy::Deployment;
use lgv_offload::fleet::{run_fleet, CloudPolicy, ElasticConfig, FleetConfig};
use lgv_offload::mission::{self, MissionConfig, Workload};

fn base() -> MissionConfig {
    MissionConfig::compact_lab(Deployment::edge_8t(), Workload::Navigation)
}

#[test]
fn fleet_of_one_is_byte_identical_to_single_vehicle() {
    let solo = mission::run(base());
    let fleet = run_fleet(FleetConfig::new(base(), 1));
    assert_eq!(fleet.vehicles.len(), 1);
    // Same fingerprint = same Debug rendering = every field, every
    // trace sample byte-identical. The fleet's contention hooks must
    // be exact no-ops for a lone tenant.
    assert_eq!(
        fleet.vehicles[0].fingerprint(),
        solo.fingerprint(),
        "size-1 fleet diverged from mission::run: {} vs {}",
        fleet.vehicles[0].reason,
        solo.reason
    );
    // The lone tenant must never have been charged for contention.
    let cloud = fleet.cloud.expect("offloaded fleet tracks the cloud");
    assert_eq!(cloud.delayed, 0);
    let uplink = fleet.uplink.expect("offloaded fleet tracks the WAP");
    assert_eq!(uplink.contended_sends, 0);
}

#[test]
fn fleet_runs_are_seed_stable() {
    let a = run_fleet(FleetConfig::new(base(), 2));
    let b = run_fleet(FleetConfig::new(base(), 2));
    assert_eq!(a.rounds, b.rounds);
    for (va, vb) in a.vehicles.iter().zip(&b.vehicles) {
        assert_eq!(va.fingerprint(), vb.fingerprint());
    }
    let (ca, cb) = (a.cloud.unwrap(), b.cloud.unwrap());
    assert_eq!(ca.admissions, cb.admissions);
    assert_eq!(ca.total_queue_delay, cb.total_queue_delay);
    assert_eq!(a.uplink.unwrap(), b.uplink.unwrap());
}

/// The CI quick gate (scripts/ci.sh stage 6): a fleet of four on one
/// edge box, run twice, must agree on every per-vehicle fingerprint
/// and every shared-resource counter — while actually exercising
/// contention on both shared resources.
#[test]
#[ignore = "slow; run by scripts/ci.sh"]
fn fleet_of_four_is_deterministic_under_contention() {
    let a = run_fleet(FleetConfig::new(base(), 4));
    let b = run_fleet(FleetConfig::new(base(), 4));
    assert_eq!(a.vehicles.len(), 4);
    for (va, vb) in a.vehicles.iter().zip(&b.vehicles) {
        assert_eq!(va.fingerprint(), vb.fingerprint());
    }
    let (ca, cb) = (a.cloud.unwrap(), b.cloud.unwrap());
    assert_eq!(ca.admissions, cb.admissions);
    assert_eq!(ca.delayed, cb.delayed);
    assert_eq!(ca.total_queue_delay, cb.total_queue_delay);
    assert_eq!(a.uplink.unwrap(), b.uplink.unwrap());
    // Four tenants' governor-chosen threads on an 8-thread edge box:
    // the queueing and spectrum models must both actually bite.
    assert!(ca.delayed > 0, "no cloud queueing with four tenants?");
    assert!(
        a.uplink.unwrap().contended_sends > 0,
        "no WAP contention with four uplinks?"
    );
}

/// The elastic identity gate: a fleet of one under an elastic
/// scheduler capped at one replica must be byte-identical to both the
/// fixed-cloud fleet and the single-vehicle runner — the elastic
/// hooks, like the contention hooks, are exact no-ops for a lone
/// tenant.
#[test]
fn elastic_fleet_of_one_is_byte_identical_to_fixed() {
    let solo = mission::run(base());
    let elastic = run_fleet(FleetConfig::new(base(), 1).with_cloud(CloudPolicy::Elastic(
        ElasticConfig::balanced().single_replica(),
    )));
    assert_eq!(
        elastic.vehicles[0].fingerprint(),
        solo.fingerprint(),
        "size-1 elastic fleet diverged from mission::run"
    );
    let cloud = elastic.cloud.expect("offloaded fleet tracks the cloud");
    assert_eq!(cloud.delayed, 0);
    assert_eq!(cloud.batches, 0, "a lone tenant has no one to batch with");
    assert_eq!(cloud.scale_ups + cloud.scale_downs, 0, "one-replica cap");
    assert!(cloud.replica_seconds > 0.0, "the ledger still accrues cost");
}

/// The elastic CI gate (scripts/ci.sh stage 6): an elastic fleet of
/// four is exactly reproducible, actually batches same-stage work,
/// and its mean queueing delay does not exceed the fixed scheduler's.
#[test]
#[ignore = "slow; run by scripts/ci.sh"]
fn elastic_fleet_is_deterministic_and_cheaper_than_fixed() {
    let policy = CloudPolicy::Elastic(ElasticConfig::balanced());
    let a = run_fleet(FleetConfig::new(base(), 4).with_cloud(policy));
    let b = run_fleet(FleetConfig::new(base(), 4).with_cloud(policy));
    for (va, vb) in a.vehicles.iter().zip(&b.vehicles) {
        assert_eq!(va.fingerprint(), vb.fingerprint());
    }
    let (ca, cb) = (a.cloud.unwrap(), b.cloud.unwrap());
    assert_eq!(ca, cb, "elastic ledger must be deterministic");
    assert!(ca.batches > 0, "four tenants in lockstep must batch");
    assert!(ca.replica_seconds > 0.0);

    let fixed = run_fleet(FleetConfig::new(base(), 4)).cloud.unwrap();
    assert!(
        ca.mean_queue_delay_secs() <= fixed.mean_queue_delay_secs(),
        "elastic ({:.6}s) must not queue worse than fixed ({:.6}s)",
        ca.mean_queue_delay_secs(),
        fixed.mean_queue_delay_secs()
    );
}
