//! Failure injection: degrade sensors, radio, and inputs, and check
//! the system fails *gracefully* — degraded performance or a clean
//! mission abort, never a panic or a silent wrong answer.

use cloud_lgv::middleware::{Bus, Switcher, SwitcherConfig, TopicName};
use cloud_lgv::net::link::{DuplexLink, LinkConfig, RemoteSite};
use cloud_lgv::net::signal::WirelessConfig;
use cloud_lgv::offload::deploy::Deployment;
use cloud_lgv::offload::mission::{self, MissionConfig, Workload};
use cloud_lgv::offload::model::{Goal, VelocityModel};
use cloud_lgv::offload::policy::PolicyKind;
use cloud_lgv::offload::strategy::PinPolicy;
use cloud_lgv::prelude::*;
use cloud_lgv::sim::world::WorldBuilder;
use cloud_lgv::sim::LidarConfig;

fn base(deployment: Deployment) -> MissionConfig {
    let world = WorldBuilder::new(7.0, 5.0, 0.05)
        .walls()
        .disc(Point2::new(3.5, 2.6), 0.3)
        .build();
    MissionConfig {
        workload: Workload::Navigation,
        deployment,
        goal: Goal::MissionTime,
        policy: PolicyKind::Algorithm1,
        adaptive: true,
        adaptive_parallelism: false,
        pins: PinPolicy::none(),
        seed: 21,
        world,
        start: Pose2D::new(1.0, 2.0, 0.0),
        nav_goal: Point2::new(5.8, 2.2),
        wap: Point2::new(3.5, 4.5),
        wireless: WirelessConfig::default().with_weak_radius(30.0),
        wan_latency_override: None,
        max_time: Duration::from_secs(180),
        dwa_samples: 400,
        slam_particles: 8,
        velocity: VelocityModel::default(),
        battery_wh: None,
        lidar: LidarConfig::default(),
        exploration_speed_cap: 0.3,
        record_traces: false,
        faults: cloud_lgv::net::FaultSchedule::none(),
        recovery: cloud_lgv::offload::recovery::RecoveryConfig::default(),
    }
}

#[test]
fn degraded_lidar_still_navigates() {
    // 10× the range noise and 5 % beam dropout: localization gets
    // worse, the mission gets slower, but it must still complete.
    let mut cfg = base(Deployment::edge_8t());
    cfg.lidar = LidarConfig {
        range_noise: 0.1,
        dropout: 0.05,
        ..LidarConfig::default()
    };
    let degraded = mission::run(cfg);
    assert!(degraded.completed, "degraded lidar: {}", degraded.reason);

    let clean = mission::run(base(Deployment::edge_8t()));
    assert!(
        degraded.time.total().as_secs_f64() >= 0.8 * clean.time.total().as_secs_f64(),
        "degraded sensing should not be magically faster"
    );
}

#[test]
fn sparse_lidar_still_navigates() {
    // A quarter of the beams (90 instead of 360), as if mechanically
    // obstructed.
    let mut cfg = base(Deployment::edge_8t());
    cfg.lidar = LidarConfig {
        beams: 90,
        ..LidarConfig::default()
    };
    let report = mission::run(cfg);
    assert!(report.completed, "sparse lidar: {}", report.reason);
}

#[test]
fn radio_dead_from_the_start_degrades_to_local() {
    // The WAP is effectively broken: the weak zone covers everything.
    let mut cfg = base(Deployment::cloud_12t());
    cfg.wireless = WirelessConfig::default().with_weak_radius(0.2);
    let report = mission::run(cfg);
    // Adaptive control must still finish the mission on local compute.
    assert!(report.completed, "dead radio: {}", report.reason);
    // And at roughly local-pipeline speeds. The overhead above the
    // pure-local baseline is the price of *discovering* the outage
    // (Algorithm 2 warm-up + the outage watchdog) plus the cold-state
    // rebuild after the abandoned migration.
    let local = mission::run(base(Deployment::local()));
    let ratio = report.time.total().as_secs_f64() / local.time.total().as_secs_f64();
    assert!(
        (0.5..2.5).contains(&ratio),
        "should run near local speed, ratio {ratio}"
    );
}

#[test]
fn extreme_wan_latency_is_survivable() {
    // A 2 s WAN hop: the cloud VDP is useless; MCT keeps the VDP
    // on-board and completes at local speed.
    let mut cfg = base(Deployment::cloud_12t());
    cfg.wan_latency_override = Some(Duration::from_secs(2));
    cfg.adaptive = false;
    let report = mission::run(cfg);
    assert!(report.completed, "huge WAN: {}", report.reason);
    assert!(
        report.avg_vdp_makespan < Duration::from_secs(1),
        "Algorithm 1 should have kept the VDP off the 2 s network: {}",
        report.avg_vdp_makespan
    );
}

#[test]
fn garbage_on_the_wire_is_ignored() {
    // Publish raw garbage on a relayed topic: the switcher ships it,
    // the remote decoder rejects it, nothing panics.
    let mut rng = SimRng::seed_from_u64(4);
    let mut link_cfg = LinkConfig::new(RemoteSite::EdgeGateway, Point2::new(0.0, 0.0));
    link_cfg.wireless = WirelessConfig::default().with_weak_radius(25.0);
    let link = DuplexLink::new(link_cfg, &mut rng);
    let robot = Bus::new();
    let remote = Bus::new();
    let mut sw = Switcher::new(
        link,
        robot.clone(),
        remote.clone(),
        &SwitcherConfig {
            up_topics: vec![(TopicName::SCAN, 1)],
            down_topics: vec![],
        },
    );
    let remote_sub = remote.subscribe(TopicName::SCAN, 1);
    robot.publish_bytes(
        TopicName::SCAN,
        bytes::Bytes::from_static(&[0xde, 0xad, 0xbe]),
    );
    let pos = Point2::new(2.0, 0.0);
    for k in 0..8 {
        sw.tick(SimTime::EPOCH + Duration::from_millis(25 * k), pos);
    }
    // The garbage arrives as bytes but fails typed decoding.
    let decoded: Result<Option<LaserScan>, _> = remote_sub.recv_latest();
    assert!(decoded.is_err(), "garbage must not decode into a scan");
}

#[test]
fn tiny_battery_fails_cleanly_not_catastrophically() {
    let mut cfg = base(Deployment::local());
    cfg.battery_wh = Some(0.01);
    let report = mission::run(cfg);
    assert!(!report.completed);
    assert!(report.reason.contains("battery"));
    // The report is still fully populated.
    assert!(report.energy.total_joules() > 0.0);
    assert!(report.time.total() > Duration::ZERO);
}

#[test]
fn unreachable_goal_times_out_cleanly() {
    // Goal inside a sealed room.
    let world = WorldBuilder::new(7.0, 5.0, 0.05)
        .walls()
        .rect(Point2::new(5.0, 1.0), Point2::new(5.1, 3.5))
        .rect(Point2::new(5.0, 1.0), Point2::new(6.8, 1.1))
        .rect(Point2::new(5.0, 3.4), Point2::new(6.8, 3.5))
        .rect(Point2::new(6.7, 1.0), Point2::new(6.8, 3.5))
        .build();
    let mut cfg = base(Deployment::edge_8t());
    cfg.world = world;
    cfg.nav_goal = Point2::new(5.9, 2.2); // sealed inside
    cfg.max_time = Duration::from_secs(30);
    let report = mission::run(cfg);
    assert!(!report.completed);
    assert!(report.reason.contains("time cap"));
}
