//! Integration tests for the trace-analysis layer: the typed reader
//! round-trips a real mission trace byte-for-byte, and the rendered
//! report is deterministic and flags the §V "lying RTT" condition on
//! a weak-signal mission.

use cloud_lgv::net::signal::WirelessConfig;
use cloud_lgv::offload::deploy::Deployment;
use cloud_lgv::offload::mission::{self, MissionConfig, Workload};
use cloud_lgv::offload::model::{Goal, VelocityModel};
use cloud_lgv::offload::policy::PolicyKind;
use cloud_lgv::offload::strategy::PinPolicy;
use cloud_lgv::sim::world::WorldBuilder;
use cloud_lgv::sim::LidarConfig;
use cloud_lgv::trace::{JsonlSink, TraceAnalysis, TraceReader, Tracer};
use cloud_lgv::types::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Same weak-signal route as `trace_observability`: the WAP sits
/// behind the start, so driving to the goal leaves coverage while the
/// mission is still offloading — sender discards accumulate while the
/// last measured RTT still reads healthy.
fn weak_signal_config() -> MissionConfig {
    let world = WorldBuilder::new(6.0, 5.0, 0.05)
        .walls()
        .disc(Point2::new(3.0, 2.8), 0.3)
        .build();
    MissionConfig {
        workload: Workload::Navigation,
        deployment: Deployment::edge_8t(),
        goal: Goal::MissionTime,
        policy: PolicyKind::Algorithm1,
        adaptive: true,
        adaptive_parallelism: true,
        pins: PinPolicy::none(),
        seed: 7,
        world,
        start: Pose2D::new(1.0, 2.0, 0.0),
        nav_goal: Point2::new(4.8, 2.0),
        wap: Point2::new(0.5, 2.0),
        wireless: WirelessConfig::default().with_weak_radius(2.0),
        wan_latency_override: None,
        max_time: Duration::from_secs(120),
        dwa_samples: 600,
        slam_particles: 6,
        velocity: VelocityModel::default(),
        battery_wh: None,
        lidar: LidarConfig::default(),
        exploration_speed_cap: 0.3,
        record_traces: false,
        faults: cloud_lgv::net::FaultSchedule::none(),
        recovery: cloud_lgv::offload::recovery::RecoveryConfig::default(),
    }
}

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run_to_jsonl() -> String {
    let buf = SharedBuf::default();
    let tracer = Tracer::enabled();
    tracer.attach(JsonlSink::new(Box::new(buf.clone())));
    mission::run_traced(weak_signal_config(), tracer);
    let bytes = buf.0.lock().unwrap().clone();
    String::from_utf8(bytes).expect("trace is UTF-8")
}

#[test]
fn reader_roundtrips_a_real_mission_trace() {
    let text = run_to_jsonl();
    let records = TraceReader::parse_str(&text).expect("every line parses");
    assert!(records.len() > 100, "only {} records", records.len());
    let reencoded: String = records.iter().map(|r| r.to_json() + "\n").collect();
    assert_eq!(text, reencoded, "parse → re-encode must be byte-identical");
}

#[test]
fn report_is_deterministic_and_flags_lying_rtt() {
    let render = || {
        let records = TraceReader::parse_str(&run_to_jsonl()).expect("trace parses");
        TraceAnalysis::from_records(&records).render_report()
    };
    let a = render();
    let b = render();
    assert_eq!(a, b, "same seed must render a byte-identical report");

    // Structure: every section is present.
    assert!(a.contains("latency waterfall"), "report:\n{a}");
    assert!(a.contains("critical path"), "report:\n{a}");
    assert!(a.contains("drop & loss lineage"), "report:\n{a}");
    assert!(a.contains("lying-RTT windows"), "report:\n{a}");

    // The weak-signal route must produce sender discards and at least
    // one window where the RTT metric lies about them (§V / Fig. 7).
    assert!(!a.contains("sender discards: none"), "no discards?\n{a}");
    assert!(
        a.contains("-> RTT metric lies"),
        "anomaly not flagged:\n{a}"
    );
    assert!(
        !a.contains("anomalies: none"),
        "anomaly section empty:\n{a}"
    );
}
