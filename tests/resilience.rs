//! Crash-aware recovery, end to end (the Fig. 12 storyline with a
//! dead cloud instead of a dead zone): an offloaded mission whose
//! remote host crashes mid-drive must fall back to local compute
//! within the heartbeat budget — not the 5 s outage watchdog — then
//! re-offload after the crash clears, gated by the exponential
//! backoff. The whole timeline is asserted from the trace.

use cloud_lgv::net::signal::WirelessConfig;
use cloud_lgv::net::{FaultKind, FaultSchedule};
use cloud_lgv::offload::deploy::Deployment;
use cloud_lgv::offload::mission::{self, MissionConfig, Workload};
use cloud_lgv::offload::model::{Goal, VelocityModel};
use cloud_lgv::offload::policy::PolicyKind;
use cloud_lgv::offload::strategy::PinPolicy;
use cloud_lgv::sim::world::WorldBuilder;
use cloud_lgv::sim::LidarConfig;
use cloud_lgv::trace::{RingBufferSink, TraceEvent, TraceRecord, Tracer};
use cloud_lgv::types::prelude::*;

const CRASH_FROM_S: f64 = 30.0;
const CRASH_DUR_S: f64 = 20.0;

/// A long, obstacle-free corridor with strong radio everywhere: the
/// only adversity is the scripted remote-host crash, so every switch
/// in the trace is attributable to it. The hardware velocity cap
/// keeps the robot short of the goal when the crash hits at t = 30 s.
fn crash_config() -> MissionConfig {
    let world = WorldBuilder::new(18.0, 4.0, 0.05).walls().build();
    MissionConfig {
        workload: Workload::Navigation,
        deployment: Deployment::edge_8t(),
        goal: Goal::MissionTime,
        policy: PolicyKind::Algorithm1,
        adaptive: true,
        adaptive_parallelism: false,
        pins: PinPolicy::none(),
        seed: 11,
        world,
        start: Pose2D::new(1.0, 2.0, 0.0),
        nav_goal: Point2::new(16.0, 2.0),
        wap: Point2::new(16.0, 2.0),
        wireless: WirelessConfig::default().with_weak_radius(40.0),
        wan_latency_override: None,
        max_time: Duration::from_secs(240),
        dwa_samples: 600,
        slam_particles: 6,
        velocity: VelocityModel {
            hw_cap: 0.22,
            ..VelocityModel::default()
        },
        battery_wh: None,
        lidar: LidarConfig::default(),
        exploration_speed_cap: 0.3,
        record_traces: false,
        faults: FaultSchedule::none().with(CRASH_FROM_S, CRASH_DUR_S, FaultKind::RemoteCrash),
        recovery: cloud_lgv::offload::recovery::RecoveryConfig::default(),
    }
}

fn run_crash_mission() -> (bool, Vec<TraceRecord>) {
    let tracer = Tracer::enabled();
    let ring = tracer.attach(RingBufferSink::new(2_000_000));
    let report = mission::run_traced(crash_config(), tracer);
    let records: Vec<TraceRecord> = ring.lock().unwrap().records().cloned().collect();
    (report.completed, records)
}

fn secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

#[test]
fn remote_crash_triggers_heartbeat_fallback_and_backed_off_reoffload() {
    let (completed, recs) = run_crash_mission();
    assert!(completed, "mission must survive a 20 s remote crash");

    let crash_ns = (CRASH_FROM_S * 1e9) as u64;
    let crash_end_ns = ((CRASH_FROM_S + CRASH_DUR_S) * 1e9) as u64;

    // The scripted window is on the record, bracketed begin/end.
    let begin = recs
        .iter()
        .find(
            |r| matches!(&r.event, TraceEvent::FaultBegin { fault, .. } if fault == "remote_crash"),
        )
        .expect("fault_begin(remote_crash) traced");
    assert_eq!(begin.t_ns, crash_ns, "crash window must open on schedule");
    assert!(
        recs.iter().any(
            |r| matches!(&r.event, TraceEvent::FaultEnd { fault, .. } if fault == "remote_crash")
        ),
        "fault_end(remote_crash) traced"
    );

    // Heartbeat, not the 5 s outage watchdog: downlink silence under a
    // healthy radio is flagged within 2 s of the crash...
    let hb = recs
        .iter()
        .find(|r| r.t_ns >= crash_ns && matches!(r.event, TraceEvent::HeartbeatMiss { .. }))
        .expect("a heartbeat miss follows the crash");
    assert!(
        secs(hb.t_ns - crash_ns) <= 2.0,
        "heartbeat fired {:.2} s after the crash (budget 2 s)",
        secs(hb.t_ns - crash_ns)
    );

    // ...and the very next net switch goes local, in the same budget.
    let fallback = recs
        .iter()
        .find(|r| r.t_ns >= crash_ns && matches!(r.event, TraceEvent::NetSwitch { .. }))
        .expect("a net switch follows the crash");
    assert!(
        matches!(fallback.event, TraceEvent::NetSwitch { to_remote: false }),
        "first post-crash switch must go local"
    );
    assert!(
        secs(fallback.t_ns - crash_ns) <= 2.0,
        "local fallback {:.2} s after the crash (budget 2 s)",
        secs(fallback.t_ns - crash_ns)
    );
    assert!(
        hb.t_ns <= fallback.t_ns,
        "the miss precedes the switch it causes"
    );

    // The retry is backoff-gated: the suppression is traced, and the
    // first re-offload attempt waits out at least the 2 s base.
    let backoff = recs
        .iter()
        .find(|r| matches!(r.event, TraceEvent::ReoffloadBackoff { .. }))
        .expect("the suppressed re-offload is traced");
    assert!(
        backoff.t_ns >= fallback.t_ns,
        "backoff arms after the fallback"
    );
    if let TraceEvent::ReoffloadBackoff { wait_ns, failures } = backoff.event {
        assert!(
            wait_ns >= 2_000_000_000,
            "first wait is the 2 s base, got {wait_ns} ns"
        );
        assert!(failures >= 1);
    }
    let reoffload = recs
        .iter()
        .find(|r| {
            r.t_ns > fallback.t_ns && matches!(r.event, TraceEvent::NetSwitch { to_remote: true })
        })
        .expect("the mission re-offloads");
    assert!(
        reoffload.t_ns - fallback.t_ns >= 2_000_000_000,
        "re-offload after {:.2} s — must wait out the 2 s backoff",
        secs(reoffload.t_ns - fallback.t_ns)
    );

    // Once the host is back, the last word is a re-offload that
    // sticks: no further heartbeat misses after the final switch.
    let last_switch = recs
        .iter()
        .rfind(|r| matches!(r.event, TraceEvent::NetSwitch { .. }))
        .unwrap();
    assert!(
        matches!(last_switch.event, TraceEvent::NetSwitch { to_remote: true }),
        "mission must end offloaded again"
    );
    assert!(
        !recs.iter().any(|r| {
            r.t_ns > last_switch.t_ns.max(crash_end_ns)
                && matches!(r.event, TraceEvent::HeartbeatMiss { .. })
        }),
        "no heartbeat misses once the host is back and re-offloaded"
    );
}

#[test]
fn crash_mission_trace_is_deterministic() {
    let (_, a) = run_crash_mission();
    let (_, b) = run_crash_mission();
    let a: Vec<String> = a.iter().map(|r| r.to_json()).collect();
    let b: Vec<String> = b.iter().map(|r| r.to_json()).collect();
    assert_eq!(a, b, "same seed + schedule must trace identically");
}
