//! Cross-crate integration tests: the whole stack assembled through
//! the `cloud-lgv` facade, exercising the paper's claims end to end on
//! small worlds (paper-scale shape checks live in `crates/bench`).

use cloud_lgv::offload::classify::{classify, table2_with_map, table2_without_map};
use cloud_lgv::offload::deploy::Deployment;
use cloud_lgv::offload::mission::{self, MissionConfig, Workload};
use cloud_lgv::offload::model::{Goal, VelocityModel};
use cloud_lgv::offload::policy::PolicyKind;
use cloud_lgv::offload::strategy::{OffloadStrategy, PinPolicy};
use cloud_lgv::prelude::*;
use cloud_lgv::sim::energy::Component;
use cloud_lgv::sim::world::WorldBuilder;
use lgv_net::signal::WirelessConfig;

fn mini(deployment: Deployment, workload: Workload) -> MissionConfig {
    let world = WorldBuilder::new(7.0, 5.0, 0.05)
        .walls()
        .disc(Point2::new(3.5, 2.6), 0.3)
        .build();
    MissionConfig {
        workload,
        deployment,
        goal: Goal::MissionTime,
        policy: PolicyKind::Algorithm1,
        adaptive: true,
        adaptive_parallelism: false,
        pins: PinPolicy::none(),
        seed: 99,
        world,
        start: Pose2D::new(1.0, 2.0, 0.0),
        nav_goal: Point2::new(5.8, 2.2),
        wap: Point2::new(3.5, 4.5),
        wireless: WirelessConfig::default().with_weak_radius(30.0),
        wan_latency_override: None,
        max_time: Duration::from_secs(180),
        dwa_samples: 600,
        slam_particles: 8,
        velocity: VelocityModel::default(),
        battery_wh: None,
        lidar: lgv_sim::LidarConfig::default(),
        exploration_speed_cap: 0.3,
        record_traces: true,
        faults: lgv_net::FaultSchedule::none(),
        recovery: cloud_lgv::offload::recovery::RecoveryConfig::default(),
    }
}

#[test]
fn full_stack_navigation_all_deployments_complete() {
    for d in Deployment::evaluation_set() {
        let report = mission::run(mini(d, Workload::Navigation));
        assert!(report.completed, "{} failed: {}", d.label, report.reason);
        assert!(report.energy.total_joules() > 0.0);
    }
}

#[test]
fn offloading_direction_matches_paper_headlines() {
    let local = mission::run(mini(Deployment::local(), Workload::Navigation));
    let best = mission::run(mini(Deployment::edge_8t(), Workload::Navigation));
    assert!(local.completed && best.completed);
    // Fig. 13 directions: less time, less total energy, much less EC
    // energy, motor energy roughly preserved.
    assert!(best.time.total() < local.time.total());
    assert!(best.energy.total_joules() < local.energy.total_joules());
    let motor_ratio =
        best.energy.joules(Component::Motor) / local.energy.joules(Component::Motor).max(1e-9);
    assert!(
        (0.4..2.0).contains(&motor_ratio),
        "motor energy should be roughly preserved, ratio {motor_ratio}"
    );
}

#[test]
fn wireless_energy_appears_only_when_offloaded() {
    let local = mission::run(mini(Deployment::local(), Workload::Navigation));
    let cloud = mission::run(mini(Deployment::cloud(), Workload::Navigation));
    assert_eq!(local.energy.joules(Component::Wireless), 0.0);
    assert!(cloud.energy.joules(Component::Wireless) > 0.0);
    // But the wireless energy stays small (small D_trans, Eq. 1b).
    assert!(
        cloud.energy.joules(Component::Wireless) < 0.05 * cloud.energy.total_joules(),
        "wireless share too large"
    );
}

#[test]
fn dead_zone_static_policy_stalls_adaptive_recovers() {
    // Goal deep in a radio dead zone.
    let world = WorldBuilder::new(18.0, 4.0, 0.05).walls().build();
    let base = |adaptive: bool| {
        let mut cfg = mini(Deployment::cloud_12t(), Workload::Navigation);
        cfg.world = world.clone();
        cfg.start = Pose2D::new(1.0, 2.0, 0.0);
        cfg.nav_goal = Point2::new(16.5, 2.0);
        cfg.wap = Point2::new(1.0, 3.5);
        cfg.wireless = WirelessConfig::default().with_weak_radius(7.0);
        cfg.adaptive = adaptive;
        cfg.max_time = Duration::from_secs(200);
        cfg
    };
    let adaptive = mission::run(base(true));
    let static_policy = mission::run(base(false));
    assert!(
        adaptive.completed,
        "adaptive should finish: {}",
        adaptive.reason
    );
    assert!(adaptive.net_switches >= 1, "Algorithm 2 should have fired");
    // The static policy either fails outright or spends far longer
    // suspended waiting for commands that never arrive.
    if static_policy.completed {
        assert!(
            static_policy.time.standby.as_secs_f64() > 2.0 * adaptive.time.standby.as_secs_f64(),
            "static standby {} vs adaptive {}",
            static_policy.time.standby,
            adaptive.time.standby
        );
    }
}

#[test]
fn exploration_builds_a_map_and_finishes() {
    let mut cfg = mini(Deployment::edge_8t(), Workload::Exploration);
    cfg.max_time = Duration::from_secs(300);
    let report = mission::run(cfg);
    assert!(report.completed, "exploration failed: {}", report.reason);
    // SLAM dominates the cycle ledger (Table II without-map shape).
    let slam = report.gcycles(NodeKind::Slam);
    let total: f64 = report.node_gcycles.iter().map(|(_, g)| g).sum();
    assert!(slam / total > 0.3, "SLAM share {}", slam / total);
}

#[test]
fn energy_goal_vs_time_goal_placements() {
    // Under a bad network, MCT pulls the VDP back local while EC keeps
    // everything offloaded — Algorithm 1's two branches.
    let class = classify(&table2_without_map());
    let bad_net_local = Duration::from_millis(500);
    let bad_net_cloud = Duration::from_millis(800);
    let mct = OffloadStrategy::new(Goal::MissionTime).decide(&class, bad_net_local, bad_net_cloud);
    let ec = OffloadStrategy::new(Goal::Energy).decide(&class, bad_net_local, bad_net_cloud);
    assert!(!mct.remote.contains(NodeKind::PathTracking));
    assert!(ec.remote.contains(NodeKind::PathTracking));
    // Both keep the off-path ECN (SLAM) remote.
    assert!(mct.remote.contains(NodeKind::Slam));
    assert!(ec.remote.contains(NodeKind::Slam));
}

#[test]
fn safety_pinning_is_respected_in_missions() {
    let mut cfg = mini(Deployment::cloud_12t(), Workload::Navigation);
    cfg.pins = PinPolicy::safety_critical();
    let report = mission::run(cfg);
    assert!(report.completed, "{}", report.reason);
    // With PathTracking pinned local, the velocity cap stays at the
    // local level despite the cloud deployment.
    let vmax: f64 = report
        .velocity_trace
        .iter()
        .map(|s| s.vmax)
        .fold(0.0, f64::max);
    let unpinned = mission::run(mini(Deployment::cloud_12t(), Workload::Navigation));
    let vmax_unpinned: f64 = unpinned
        .velocity_trace
        .iter()
        .map(|s| s.vmax)
        .fold(0.0, f64::max);
    assert!(
        vmax < vmax_unpinned,
        "pinned {vmax} vs unpinned {vmax_unpinned}"
    );
}

#[test]
fn classification_is_stable_across_workloads() {
    let with_map = classify(&table2_with_map());
    let without_map = classify(&table2_without_map());
    assert_eq!(with_map.ecn.len(), 2);
    assert_eq!(without_map.ecn.len(), 3);
    assert!(without_map.t1.contains(NodeKind::Slam));
}
