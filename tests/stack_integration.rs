//! Cross-crate integration below the mission level: the navigation
//! stack against the simulation substrate, and the middleware over the
//! simulated radio — without the mission engine orchestrating.

use bytes::Bytes;
use cloud_lgv::middleware::{Bus, Switcher, SwitcherConfig, TopicName};
use cloud_lgv::nav::costmap::{Costmap, CostmapConfig};
use cloud_lgv::nav::dwa::{DwaConfig, DwaPlanner};
use cloud_lgv::nav::global_planner::{GlobalPlanner, PlannerConfig};
use cloud_lgv::nav::{Amcl, AmclConfig};
use cloud_lgv::net::link::{DuplexLink, LinkConfig, RemoteSite};
use cloud_lgv::net::signal::WirelessConfig;
use cloud_lgv::prelude::*;
use cloud_lgv::sim::world::{presets, WorldBuilder};
use cloud_lgv::sim::{Lidar, LidarConfig, Vehicle, VehicleConfig};
use cloud_lgv::slam::{GMapping, SlamConfig};

/// Closed-loop AMCL + planner + DWA drive in a plain room, no
/// offloading machinery: the stack itself must navigate.
#[test]
fn nav_stack_drives_to_goal_closed_loop() {
    let world = WorldBuilder::new(8.0, 6.0, 0.05)
        .walls()
        .disc(Point2::new(4.0, 3.2), 0.3)
        .build();
    let map = world.to_map_msg(SimTime::EPOCH);
    let start = Pose2D::new(1.0, 3.0, 0.0);
    let goal = Point2::new(7.0, 3.0);

    let mut rng = SimRng::seed_from_u64(5);
    let mut vehicle = Vehicle::new(VehicleConfig::default(), start, rng.fork(1));
    let mut lidar = Lidar::new(LidarConfig::default(), rng.fork(2));
    let mut amcl = Amcl::new(AmclConfig::default(), &map, start, rng.fork(3));
    let mut costmap = Costmap::from_map(CostmapConfig::default(), &map);
    let planner = GlobalPlanner::new(PlannerConfig::default());
    let mut dwa = DwaPlanner::new(DwaConfig {
        samples: 150,
        ..Default::default()
    });

    let mut now = SimTime::EPOCH;
    let mut path = PathMsg {
        stamp: now,
        waypoints: vec![],
    };
    let mut meter = WorkMeter::new();
    for cycle in 0..600 {
        let scan = lidar.scan(&world, vehicle.true_pose(), now);
        let odom = vehicle.odometry(now);
        let est = amcl.process(&odom, &scan).pose.pose;
        costmap.update(&map, est, &scan, &mut meter);
        if cycle % 5 == 0 {
            if let Ok(r) = planner.plan(&costmap, est.position(), goal, now) {
                path = r.path;
            }
        }
        let cmd = dwa.compute(&costmap, est, &path, goal);
        vehicle.command(cmd.twist);
        for _ in 0..8 {
            vehicle.step(&world, Duration::from_millis(25));
        }
        now += Duration::from_millis(200);
        if vehicle.true_pose().position().distance(goal) < 0.3 {
            return; // success
        }
    }
    panic!(
        "stack failed to reach the goal; ended at {:?}",
        vehicle.true_pose().position()
    );
}

/// SLAM maps a driven loop accurately enough that a planner can run on
/// the resulting map.
#[test]
fn slam_map_is_plannable() {
    let world = presets::intel_like();
    let start = presets::intel_start();
    let mut rng = SimRng::seed_from_u64(6);
    let cfg = SlamConfig {
        num_particles: 10,
        threads: 2,
        map_dims: *world.dims(),
        ..SlamConfig::default()
    };
    let mut slam = GMapping::new(cfg, start, rng.fork(1));
    let mut vehicle = Vehicle::new(VehicleConfig::default(), start, rng.fork(2));
    let mut lidar = Lidar::new(LidarConfig::default(), rng.fork(3));

    let mut now = SimTime::EPOCH;
    for k in 0..120 {
        let steer = if vehicle.bumped() {
            1.2
        } else {
            0.2 * ((k as f64) * 0.11).sin()
        };
        vehicle.command(Twist::new(0.2, steer));
        for _ in 0..8 {
            vehicle.step(&world, Duration::from_millis(25));
        }
        now += Duration::from_millis(200);
        let scan = lidar.scan(&world, vehicle.true_pose(), now);
        slam.process(&vehicle.odometry(now), &scan);
    }

    let map = slam.best_map(now);
    assert!(
        map.known_fraction() > 0.1,
        "mapped {}",
        map.known_fraction()
    );
    // Pose estimate stays within a sane bound of ground truth.
    let err = slam.best_pose().distance(vehicle.true_pose());
    assert!(err < 0.6, "SLAM pose error {err} m");

    // The SLAM map supports planning inside the explored region.
    let costmap = Costmap::from_map(CostmapConfig::default(), &map);
    let planner = GlobalPlanner::new(PlannerConfig {
        allow_unknown: true,
        ..Default::default()
    });
    let est = slam.best_pose().position();
    let nearby = Point2::new(est.x + 1.0, est.y);
    assert!(
        planner.plan_near(&costmap, est, nearby, 0.6, now).is_ok(),
        "planning on the SLAM map failed"
    );
}

/// Middleware over the radio: a scan published on the robot bus
/// arrives on the remote bus with identical content, and the paper's
/// 2.94 KB wire size is honoured end to end.
#[test]
fn scan_roundtrips_through_switcher_bit_exact() {
    let mut rng = SimRng::seed_from_u64(9);
    let mut link_cfg = LinkConfig::new(RemoteSite::CloudServer, Point2::new(0.0, 0.0));
    link_cfg.wireless = WirelessConfig::default().with_weak_radius(25.0);
    let link = DuplexLink::new(link_cfg, &mut rng);
    let robot = Bus::new();
    let remote = Bus::new();
    let mut sw = Switcher::new(
        link,
        robot.clone(),
        remote.clone(),
        &SwitcherConfig {
            up_topics: vec![(TopicName::SCAN, 1)],
            down_topics: vec![],
        },
    );
    let remote_sub = remote.subscribe(TopicName::SCAN, 1);

    let world = presets::lab();
    let mut lidar = Lidar::new(LidarConfig::default(), SimRng::seed_from_u64(10));
    let scan = lidar.scan(&world, presets::lab_start(), SimTime::EPOCH);

    robot.publish(TopicName::SCAN, &scan).unwrap();
    let pos = Point2::new(2.0, 0.0);
    for k in 0..8 {
        sw.tick(SimTime::EPOCH + Duration::from_millis(25 * k), pos);
    }
    let received: LaserScan = remote_sub.recv_latest().unwrap().expect("scan delivered");
    assert_eq!(received, scan, "scan must roundtrip bit-exact");
    assert!(
        sw.uplink_bytes_sent > 2_800 && sw.uplink_bytes_sent < 3_300,
        "wire size {} should be ≈ 2.94 KB",
        sw.uplink_bytes_sent
    );
    // The delivery produced an RTT sample via the immediate ack.
    assert!(sw.rtt().latest().is_some());
}

/// Raw channel behaviour composes with serialized velocity commands:
/// under weak signal the newest command wins and stale ones vanish.
#[test]
fn command_stream_freshness_over_lossy_link() {
    let mut rng = SimRng::seed_from_u64(11);
    let mut link_cfg = LinkConfig::new(RemoteSite::EdgeGateway, Point2::new(0.0, 0.0));
    link_cfg.wireless = WirelessConfig::default().with_weak_radius(25.0);
    let mut link = DuplexLink::new(link_cfg, &mut rng);
    let pos = Point2::new(2.0, 0.0);
    // Burst of 5 commands inside one tick window: one-length queue
    // keeps only the freshest at the receiver.
    for i in 0..5u64 {
        let cmd = VelocityCmd {
            stamp: SimTime::EPOCH + Duration::from_millis(i),
            twist: Twist::new(i as f64 * 0.05, 0.0),
            source: VelocitySource::Navigation,
        };
        let bytes = lgv_middleware::to_bytes(&cmd).unwrap();
        link.send_down(
            SimTime::EPOCH + Duration::from_millis(i),
            pos,
            Bytes::from(bytes.to_vec()),
        );
    }
    link.tick(SimTime::EPOCH + Duration::from_millis(200), pos);
    let pkt = link.recv_at_robot().expect("freshest command arrives");
    let cmd: VelocityCmd = lgv_middleware::from_bytes(&pkt.payload).unwrap();
    assert_eq!(
        cmd.twist.linear, 0.2,
        "one-length queue keeps the newest command"
    );
    assert!(link.recv_at_robot().is_none());
}
