//! Chaos testing: seeded, randomized fault schedules (blackouts,
//! burst loss, latency spikes, corruption, remote crashes) thrown at
//! short offloaded missions. The system must degrade *gracefully* —
//! complete or abort cleanly with a populated report, never panic —
//! and every run must stay byte-deterministic per seed so any chaos
//! failure is replayable.

use cloud_lgv::net::signal::WirelessConfig;
use cloud_lgv::net::FaultSchedule;
use cloud_lgv::offload::deploy::Deployment;
use cloud_lgv::offload::mission::{self, MissionConfig, MissionReport, Workload};
use cloud_lgv::offload::model::{Goal, VelocityModel};
use cloud_lgv::offload::strategy::PinPolicy;
use cloud_lgv::sim::world::WorldBuilder;
use cloud_lgv::sim::LidarConfig;
use cloud_lgv::trace::{JsonlSink, TraceAnalysis, TraceReader, Tracer};
use cloud_lgv::types::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Fault windows land in the first ~60 % of this horizon — short
/// enough that the mini mission is still driving when they open.
const CHAOS_HORIZON: Duration = Duration::from_secs(20);

/// The mini navigation arena under a seed-derived fault schedule.
/// Seed drives both the mission's own noise and the schedule, so one
/// u64 reproduces the whole run.
fn chaos_config(seed: u64) -> MissionConfig {
    let world = WorldBuilder::new(7.0, 5.0, 0.05)
        .walls()
        .disc(Point2::new(3.5, 2.6), 0.3)
        .build();
    MissionConfig {
        workload: Workload::Navigation,
        deployment: Deployment::edge_8t(),
        goal: Goal::MissionTime,
        policy: cloud_lgv::offload::policy::PolicyKind::Algorithm1,
        adaptive: true,
        adaptive_parallelism: false,
        pins: PinPolicy::none(),
        seed,
        world,
        start: Pose2D::new(1.0, 2.0, 0.0),
        nav_goal: Point2::new(5.8, 2.2),
        wap: Point2::new(3.5, 4.5),
        wireless: WirelessConfig::default().with_weak_radius(30.0),
        wan_latency_override: None,
        max_time: Duration::from_secs(180),
        dwa_samples: 400,
        slam_particles: 6,
        velocity: VelocityModel::default(),
        battery_wh: None,
        lidar: LidarConfig::default(),
        exploration_speed_cap: 0.3,
        record_traces: false,
        faults: FaultSchedule::randomized(seed, CHAOS_HORIZON),
        recovery: cloud_lgv::offload::recovery::RecoveryConfig::default(),
    }
}

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run_chaos(seed: u64) -> (MissionReport, String) {
    let buf = SharedBuf::default();
    let tracer = Tracer::enabled();
    tracer.attach(JsonlSink::new(Box::new(buf.clone())));
    let report = mission::run_traced(chaos_config(seed), tracer);
    let bytes = buf.0.lock().unwrap().clone();
    (report, String::from_utf8(bytes).expect("trace is UTF-8"))
}

#[test]
fn randomized_fault_schedules_degrade_gracefully() {
    for seed in 0..6u64 {
        let schedule = FaultSchedule::randomized(seed, CHAOS_HORIZON);
        assert!(!schedule.is_empty(), "seed {seed} scheduled no faults");
        let earliest = schedule.windows().iter().map(|w| w.from).min().unwrap();
        let (report, trace) = run_chaos(seed);
        // Graceful: finished or aborted with a stated reason — and
        // either way the report is populated, not a husk.
        assert!(
            report.completed || !report.reason.is_empty(),
            "seed {seed}: no completion and no reason"
        );
        assert!(
            report.energy.total_joules() > 0.0,
            "seed {seed}: empty energy report"
        );
        assert!(
            report.time.total() > Duration::from_secs(1),
            "seed {seed}: empty time report"
        );

        // The trace survives the chaos too: every line parses, the
        // typed reader round-trips byte-for-byte, and the analysis
        // layer renders the fault windows it was promised.
        let records = TraceReader::parse_str(&trace)
            .unwrap_or_else(|e| panic!("seed {seed}: trace does not parse: {e}"));
        let reencoded: String = records.iter().map(|r| r.to_json() + "\n").collect();
        assert_eq!(trace, reencoded, "seed {seed}: re-encode differs");
        let analysis = TraceAnalysis::from_records(&records);
        // A window can only miss the trace if the mission finished
        // before it was scheduled to open.
        if analysis.fault_window_count() == 0 {
            let end = SimTime::EPOCH + report.time.total();
            assert!(
                end <= earliest,
                "seed {seed}: mission ran past {earliest:?} but no fault window opened"
            );
        } else {
            let rendered = analysis.render_report();
            assert!(
                rendered.contains("fault windows"),
                "seed {seed}: report lacks fault section"
            );
        }
    }
}

#[test]
fn chaos_runs_are_byte_deterministic_per_seed() {
    for seed in [1u64, 4] {
        let (ra, ta) = run_chaos(seed);
        let (rb, tb) = run_chaos(seed);
        assert_eq!(ra.completed, rb.completed, "seed {seed}: outcome diverged");
        assert_eq!(ta, tb, "seed {seed}: trace diverged between identical runs");
    }
}

#[test]
fn randomized_schedules_differ_across_seeds() {
    // The generator must actually explore the fault space: across a
    // handful of seeds we see more than one schedule and more than
    // one fault kind.
    let schedules: Vec<FaultSchedule> = (0..8)
        .map(|s| FaultSchedule::randomized(s, CHAOS_HORIZON))
        .collect();
    let first = &schedules[0];
    assert!(
        schedules.iter().any(|s| s != first),
        "all seeds gave one schedule"
    );
    let labels: std::collections::BTreeSet<&'static str> = schedules
        .iter()
        .flat_map(|s| s.windows().iter().map(|w| w.kind.label()))
        .collect();
    assert!(labels.len() >= 3, "only kinds {labels:?} generated");
}
