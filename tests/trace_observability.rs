//! Integration tests for the `lgv-trace` observability layer (see
//! `docs/OBSERVABILITY.md`): the JSONL stream is byte-for-byte
//! deterministic per seed, and a short offloaded mission that crosses
//! a dead zone emits at least one event of every category.

use cloud_lgv::net::signal::WirelessConfig;
use cloud_lgv::net::{FaultKind, FaultSchedule};
use cloud_lgv::offload::deploy::Deployment;
use cloud_lgv::offload::mission::{self, MissionConfig, Workload};
use cloud_lgv::offload::model::{Goal, VelocityModel};
use cloud_lgv::offload::policy::PolicyKind;
use cloud_lgv::offload::strategy::PinPolicy;
use cloud_lgv::sim::world::WorldBuilder;
use cloud_lgv::sim::LidarConfig;
use cloud_lgv::trace::{EventCategory, JsonlSink, MetricsRegistry, RingBufferSink, Tracer};
use cloud_lgv::types::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A short offloaded mission whose route crosses the radio's weak
/// zone: the WAP sits behind the start, so the drive to the goal
/// leaves coverage, Algorithm 2 switches local, and a state migration
/// starts — every event category fires.
fn traced_config() -> MissionConfig {
    let world = WorldBuilder::new(6.0, 5.0, 0.05)
        .walls()
        .disc(Point2::new(3.0, 2.8), 0.3)
        .build();
    MissionConfig {
        workload: Workload::Navigation,
        deployment: Deployment::edge_8t(),
        goal: Goal::MissionTime,
        policy: PolicyKind::Algorithm1,
        adaptive: true,
        adaptive_parallelism: true,
        pins: PinPolicy::none(),
        seed: 7,
        world,
        start: Pose2D::new(1.0, 2.0, 0.0),
        nav_goal: Point2::new(4.8, 2.0),
        wap: Point2::new(0.5, 2.0),
        wireless: WirelessConfig::default().with_weak_radius(2.0),
        wan_latency_override: None,
        max_time: Duration::from_secs(120),
        dwa_samples: 600,
        slam_particles: 6,
        velocity: VelocityModel::default(),
        battery_wh: None,
        lidar: LidarConfig::default(),
        exploration_speed_cap: 0.3,
        record_traces: false,
        // A mild latency spike early in the run so the `fault`
        // category fires without changing the route.
        faults: FaultSchedule::none().with(
            2.0,
            1.0,
            FaultKind::LatencySpike {
                extra: Duration::from_millis(40),
            },
        ),
        recovery: cloud_lgv::offload::recovery::RecoveryConfig::default(),
    }
}

/// An in-memory `Write` target the test can read back after the sink
/// (which owns its writer) is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Run one traced mission and return the raw JSONL bytes.
fn run_to_jsonl() -> Vec<u8> {
    let buf = SharedBuf::default();
    let tracer = Tracer::enabled();
    tracer.attach(JsonlSink::new(Box::new(buf.clone())));
    mission::run_traced(traced_config(), tracer);
    let bytes = buf.0.lock().unwrap().clone();
    bytes
}

#[test]
fn jsonl_stream_is_byte_identical_per_seed() {
    let a = run_to_jsonl();
    let b = run_to_jsonl();
    assert!(!a.is_empty(), "trace must not be empty");
    assert_eq!(a, b, "same seed must produce a byte-identical trace");
}

#[test]
fn jsonl_stream_matches_the_documented_schema() {
    let bytes = run_to_jsonl();
    let text = String::from_utf8(bytes).expect("trace is UTF-8");
    let mut expected_seq = 0u64;
    let mut last_t = 0u64;
    for line in text.lines() {
        assert!(
            line.starts_with("{\"t_ns\":") && line.ends_with('}'),
            "malformed line: {line}"
        );
        assert!(line.contains("\"kind\":\""), "line lacks a kind: {line}");
        // seq is a gap-free emission counter; t_ns never goes backward.
        let seq_field = format!("\"seq\":{expected_seq},");
        assert!(line.contains(&seq_field), "expected {seq_field} in: {line}");
        let t_ns: u64 = line["{\"t_ns\":".len()..line.find(',').unwrap()]
            .parse()
            .unwrap();
        assert!(
            t_ns >= last_t,
            "virtual time went backward at seq {expected_seq}"
        );
        last_t = t_ns;
        expected_seq += 1;
    }
    assert!(expected_seq > 100, "only {expected_seq} events traced");
}

#[test]
fn short_mission_covers_every_event_category() {
    let tracer = Tracer::enabled();
    let ring = tracer.attach(RingBufferSink::new(1_000_000));
    let metrics = tracer.attach(MetricsRegistry::new());
    mission::run_traced(traced_config(), tracer);

    let ring = ring.lock().unwrap();
    let mut missing: Vec<&'static str> = Vec::new();
    for cat in EventCategory::ALL {
        // `cloud` events only exist with a shared elastic cloud and
        // `region` events only in multi-region fleets — covered by
        // `elastic_fleet_trace_covers_cloud_category` and
        // `sharded_fleet_trace_covers_region_category` below.
        if cat == EventCategory::Cloud || cat == EventCategory::Region {
            continue;
        }
        if !ring.records().any(|r| r.event.category() == cat) {
            missing.push(cat.as_str());
        }
    }
    assert!(
        missing.is_empty(),
        "categories never emitted: {missing:?} ({} events total)",
        ring.total_seen()
    );

    // The metrics sink aggregates the same stream.
    let dump = metrics.lock().unwrap().dump();
    assert!(
        dump.contains("counter events.control_decision"),
        "dump:\n{dump}"
    );
    assert!(dump.contains("hist rtt_ms"), "dump:\n{dump}");
    assert!(dump.contains("hist energy_j.motor"), "dump:\n{dump}");
}

/// The `cloud` category needs a shared elastic cloud to fire: a
/// two-vehicle fleet on one edge box batches same-stage admissions
/// and autoscales, and every event carries its vehicle's tag.
#[test]
fn elastic_fleet_trace_covers_cloud_category() {
    use cloud_lgv::offload::fleet::{run_fleet_traced, CloudPolicy, ElasticConfig, FleetConfig};

    let tracer = Tracer::enabled();
    let ring = tracer.attach(RingBufferSink::new(4_000_000));
    let base = MissionConfig::compact_lab(Deployment::edge_8t(), Workload::Navigation);
    run_fleet_traced(
        FleetConfig::new(base, 2).with_cloud(CloudPolicy::Elastic(ElasticConfig::balanced())),
        tracer,
    );

    let ring = ring.lock().unwrap();
    let cloud: Vec<_> = ring
        .records()
        .filter(|r| r.event.category() == EventCategory::Cloud)
        .collect();
    assert!(
        cloud.iter().any(|r| r.event.kind() == "cloud_batch"),
        "two lockstep tenants must coalesce same-stage admissions"
    );
    assert!(
        cloud.iter().any(|r| r.event.kind() == "cloud_scale"),
        "two tenants on an 8-thread box must trip the autoscaler"
    );
    assert!(
        cloud.iter().all(|r| r.vehicle != 0),
        "cloud events must be attributed to a vehicle"
    );
}

/// The `region` category needs a multi-region topology to fire: a
/// four-vehicle fleet striped over two regions on one scheduler pool
/// assigns every vehicle a region at t=0, and region 1's admissions
/// each pay (and trace) a WAN hop.
#[test]
fn sharded_fleet_trace_covers_region_category() {
    use cloud_lgv::offload::fleet::{run_fleet_traced, FleetConfig, RegionTopology};

    let tracer = Tracer::enabled();
    let ring = tracer.attach(RingBufferSink::new(4_000_000));
    let base = MissionConfig::compact_lab(Deployment::edge_8t(), Workload::Navigation);
    run_fleet_traced(
        FleetConfig::new(base, 4).with_topology(RegionTopology::sharded(2).with_cloud_pools(1)),
        tracer,
    );

    let ring = ring.lock().unwrap();
    let region: Vec<_> = ring
        .records()
        .filter(|r| r.event.category() == EventCategory::Region)
        .collect();
    assert_eq!(
        region
            .iter()
            .filter(|r| r.event.kind() == "region_assign")
            .count(),
        4,
        "every vehicle gets exactly one assignment at t=0"
    );
    assert!(
        region.iter().any(|r| r.event.kind() == "wan_hop"),
        "region 1 shares pool 0 and must pay traced WAN hops"
    );
    assert!(
        region.iter().all(|r| r.vehicle != 0),
        "region events must be attributed to a vehicle"
    );
}
