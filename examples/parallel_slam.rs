//! Drive the SLAM substrate directly: map a synthetic multi-room
//! world with the GMapping-style particle filter and show the cloud-
//! acceleration effect — real wall-clock thread scaling of the
//! parallel scanMatch (paper Fig. 6) plus the priced processing times
//! on the three paper platforms (Fig. 9's mechanism).
//!
//! ```bash
//! cargo run --release --example parallel_slam
//! ```

use cloud_lgv::prelude::*;
use cloud_lgv::sim::platform::Platform;
use cloud_lgv::sim::world::presets;
use cloud_lgv::sim::{Lidar, LidarConfig, Vehicle, VehicleConfig};
use cloud_lgv::slam::{GMapping, SlamConfig};
use std::time::Instant;

fn main() {
    let world = presets::intel_like();
    let start = presets::intel_start();

    for &threads in &[1usize, 2, 4] {
        let cfg = SlamConfig {
            num_particles: 24,
            threads,
            map_dims: *world.dims(),
            ..SlamConfig::default()
        };
        let mut rng = SimRng::seed_from_u64(7);
        let mut slam = GMapping::new(cfg, start, rng.fork(1));
        let mut vehicle = Vehicle::new(VehicleConfig::default(), start, rng.fork(2));
        let mut lidar = Lidar::new(LidarConfig::default(), rng.fork(3));

        // Drive a scripted loop through the corridor, mapping as we go.
        vehicle.command(Twist::new(0.2, 0.0));
        let mut now = SimTime::EPOCH;
        let wall = Instant::now();
        let mut avg_work = Work::ZERO;
        let scans = 60;
        for k in 0..scans {
            // Steer gently; bounce off obstacles.
            let steer = if vehicle.bumped() {
                1.2
            } else {
                0.3 * ((k as f64) * 0.15).sin()
            };
            vehicle.command(Twist::new(0.2, steer));
            for _ in 0..8 {
                vehicle.step(&world, Duration::from_millis(25));
            }
            now += Duration::from_millis(200);
            let scan = lidar.scan(&world, vehicle.true_pose(), now);
            let odom = vehicle.odometry(now);
            let out = slam.process(&odom, &scan);
            avg_work += out.work;
        }
        let elapsed = wall.elapsed();
        let map = slam.best_map(now);
        let err = slam.best_pose().distance(vehicle.true_pose());

        let per_scan = Work {
            serial_cycles: avg_work.serial_cycles / scans as f64,
            parallel_cycles: avg_work.parallel_cycles / scans as f64,
            parallel_items: avg_work.parallel_items,
        };
        println!("--- {threads} thread(s) ---");
        println!(
            "  wall-clock: {:>6.2?} for {scans} scans   map known: {:>4.1} %   pose error: {:.2} m",
            elapsed,
            map.known_fraction() * 100.0,
            err
        );
        println!(
            "  priced per-scan time: Turtlebot3 {:>7.1} ms | gateway {:>6.1} ms | cloud {:>6.1} ms",
            Platform::turtlebot3()
                .exec_time(&per_scan, threads as u32)
                .as_millis_f64(),
            Platform::edge_gateway()
                .exec_time(&per_scan, threads as u32)
                .as_millis_f64(),
            Platform::cloud_server()
                .exec_time(&per_scan, threads as u32)
                .as_millis_f64(),
        );
    }
    println!();
    println!("Thread count never changes the SLAM estimates — the parallel scanMatch");
    println!("partitions particles, it does not reorder them. Wall-clock speedup");
    println!("appears on multi-core hosts; the priced per-scan times above show what");
    println!("the same work costs on the paper's three platforms.");
}
