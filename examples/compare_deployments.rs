//! Compare the five deployment strategies of the paper's evaluation
//! (Fig. 13) on the navigation workload: local vs edge vs cloud, with
//! and without cloud acceleration.
//!
//! ```bash
//! cargo run --release --example compare_deployments
//! ```

use cloud_lgv::offload::deploy::Deployment;
use cloud_lgv::offload::mission::{self, MissionConfig};
use cloud_lgv::sim::energy::Component;

fn main() {
    println!(
        "{:<12} {:>8} {:>9} {:>9} {:>10} {:>8}",
        "deployment", "time(s)", "total(J)", "EC(J)", "motor(J)", "done"
    );
    let mut baseline: Option<(f64, f64)> = None;
    for d in Deployment::evaluation_set() {
        let mut cfg = MissionConfig::navigation_lab(d);
        cfg.record_traces = false;
        let r = mission::run(cfg);
        let secs = r.time.total().as_secs_f64();
        let total = r.energy.total_joules();
        let (t0, e0) = *baseline.get_or_insert((secs, total));
        println!(
            "{:<12} {:>8.1} {:>9.1} {:>9.1} {:>10.1} {:>8}   ({:.2}x faster, {:.2}x less energy)",
            d.label,
            secs,
            total,
            r.energy.joules(Component::EmbeddedComputer),
            r.energy.joules(Component::Motor),
            r.completed,
            t0 / secs,
            e0 / total,
        );
    }
}
