//! Generalization check: does the offloading win hold beyond the two
//! hand-built evaluation worlds? Sweep seeded procedural floorplans
//! and compare local vs offloaded navigation on each.
//!
//! ```bash
//! cargo run --release --example generated_worlds
//! ```

use cloud_lgv::offload::deploy::Deployment;
use cloud_lgv::offload::mission::{self, MissionConfig, Workload};
use cloud_lgv::prelude::*;
use cloud_lgv::sim::world::generator::{generate, FloorplanConfig};

fn main() {
    let gen_cfg = FloorplanConfig {
        rooms_x: 3,
        rooms_y: 2,
        room_size: 4.5,
        door: 1.3,
        ..Default::default()
    };
    println!(
        "{:<6} {:>9} {:>10} {:>10} {:>8} {:>8}",
        "seed", "path", "local (s)", "edge8t (s)", "speedup", "E ratio"
    );
    let mut wins = 0;
    let seeds = [1u64, 2, 3, 4, 5];
    for &seed in &seeds {
        let plan = generate(&gen_cfg, seed);
        let run_one = |deployment| {
            let mut cfg = MissionConfig::navigation_lab(deployment);
            cfg.workload = Workload::Navigation;
            cfg.world = plan.world.clone();
            cfg.start = plan.start;
            cfg.nav_goal = plan.goal;
            // WAP over the middle room: whole floor in range.
            cfg.wap = Point2::new(
                gen_cfg.rooms_x as f64 * gen_cfg.room_size / 2.0,
                gen_cfg.rooms_y as f64 * gen_cfg.room_size / 2.0,
            );
            cfg.record_traces = false;
            cfg.max_time = Duration::from_secs(600);
            mission::run(cfg)
        };
        let local = run_one(Deployment::local());
        let edge = run_one(Deployment::edge_8t());
        let speedup = local.time.total().as_secs_f64() / edge.time.total().as_secs_f64();
        let e_ratio = local.energy.total_joules() / edge.energy.total_joules();
        if edge.completed && local.completed && speedup > 1.0 && e_ratio > 1.0 {
            wins += 1;
        }
        println!(
            "{:<6} {:>8.1}m {:>10.1} {:>10.1} {:>7.2}x {:>7.2}x{}",
            seed,
            plan.start.position().distance(plan.goal),
            local.time.total().as_secs_f64(),
            edge.time.total().as_secs_f64(),
            speedup,
            e_ratio,
            if local.completed && edge.completed {
                ""
            } else {
                "  (!)"
            },
        );
    }
    println!();
    println!(
        "offloading won on {wins}/{} generated floorplans",
        seeds.len()
    );
}
