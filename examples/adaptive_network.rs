//! Demonstrate the real-time adjustment strategy (Algorithm 2): a
//! navigation mission whose goal lies in a radio dead zone. With a
//! *static* offloading policy the velocity commands stop arriving and
//! the robot stalls; with the adaptive policy the framework detects
//! the bandwidth collapse (while observed latency still looks fine!)
//! and migrates the VDP nodes back on-board.
//!
//! ```bash
//! cargo run --release --example adaptive_network
//! ```

use cloud_lgv::offload::deploy::Deployment;
use cloud_lgv::offload::mission::{self, MissionConfig, Workload};
use cloud_lgv::prelude::*;
use cloud_lgv::sim::world::WorldBuilder;
use lgv_net::signal::WirelessConfig;

fn config(adaptive: bool) -> MissionConfig {
    // A long corridor: the WAP sits at the start; the goal is ~17 m
    // out, well past the 8 m weak-signal radius.
    let world = WorldBuilder::new(20.0, 4.0, 0.05).walls().build();
    let mut cfg = MissionConfig::navigation_lab(Deployment::cloud_12t());
    cfg.workload = Workload::Navigation;
    cfg.world = world;
    cfg.start = Pose2D::new(1.0, 2.0, 0.0);
    cfg.nav_goal = Point2::new(18.5, 2.0);
    cfg.wap = Point2::new(1.0, 3.5);
    cfg.wireless = WirelessConfig::default().with_weak_radius(8.0);
    cfg.adaptive = adaptive;
    cfg.max_time = Duration::from_secs(240);
    cfg
}

fn main() {
    for (label, adaptive) in [
        ("static offloading", false),
        ("adaptive (Algorithm 2)", true),
    ] {
        let report = mission::run(config(adaptive));
        println!("--- {label} ---");
        println!(
            "  completed: {:<5}  time: {:>6.1} s  standby: {:>6.1} s  switches: {}",
            report.completed,
            report.time.total().as_secs_f64(),
            report.time.standby.as_secs_f64(),
            report.net_switches
        );
        // Show what the robot saw around the dead-zone boundary.
        if let Some(s) = report
            .net_trace
            .iter()
            .find(|s| s.bandwidth < 1.0 && s.t > 5.0)
        {
            println!(
                "  first starved sample: t={:.1}s bandwidth={:.1} pkt/s rtt={:.0} ms (looks healthy!) remote={}",
                s.t, s.bandwidth, s.rtt_ms, s.remote_active
            );
        }
        println!();
    }
    println!("The static policy stalls in the dead zone (standby dominates); the");
    println!("adaptive policy switches the VDP local and finishes the mission.");
}
