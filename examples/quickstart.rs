//! Quickstart: run one navigation mission with cloud offloading and
//! print the mission report.
//!
//! ```bash
//! cargo run --release --example quickstart
//! # with a structured event trace (see docs/OBSERVABILITY.md):
//! cargo run --release --example quickstart -- --trace /tmp/mission.jsonl
//! ```

use cloud_lgv::offload::deploy::Deployment;
use cloud_lgv::offload::mission::{self, MissionConfig};
use cloud_lgv::trace::{JsonlSink, MetricsRegistry, Tracer};

/// `--trace <path>` from the command line, if present.
fn trace_path_from_args() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            let path = args.next();
            if path.is_none() {
                eprintln!("error: --trace requires a file path");
                std::process::exit(2);
            }
            return path;
        }
    }
    None
}

fn main() {
    // Optional observability: `--trace <path>` streams every mission
    // event as one JSON line stamped with virtual time, and aggregates
    // the same stream into a metrics registry.
    let trace_path = trace_path_from_args();
    let tracer = match &trace_path {
        Some(path) => {
            let sink = match JsonlSink::create(path) {
                Ok(sink) => sink,
                Err(e) => {
                    eprintln!("error: cannot create trace file {path}: {e}");
                    std::process::exit(2);
                }
            };
            let tracer = Tracer::enabled();
            tracer.attach(sink);
            tracer
        }
        None => Tracer::disabled(),
    };
    let metrics = tracer
        .is_enabled()
        .then(|| tracer.attach(MetricsRegistry::new()));

    // The paper's lab navigation workload, offloaded to the edge
    // gateway with 8-thread parallelization (the best Fig. 13 case).
    let config = MissionConfig::navigation_lab(Deployment::edge_8t());
    println!(
        "running navigation mission on deployment `{}` ...",
        config.deployment.label
    );

    let report = mission::run_traced(config, tracer);

    println!();
    println!("completed : {} ({})", report.completed, report.reason);
    println!("distance  : {:.2} m", report.distance);
    println!(
        "time      : {:.1} s  (standby {:.1} s + moving {:.1} s)",
        report.time.total().as_secs_f64(),
        report.time.standby.as_secs_f64(),
        report.time.moving.as_secs_f64()
    );
    println!("avg VDP makespan: {}", report.avg_vdp_makespan);
    println!();
    println!("energy breakdown (Eq. 1a):");
    println!("{}", report.energy);

    if let Some(metrics) = metrics {
        println!();
        println!("metrics aggregated from the trace stream:");
        print!("{}", metrics.lock().unwrap().dump());
        println!();
        println!("trace written to {}", trace_path.unwrap());
    }
}
