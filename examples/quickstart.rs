//! Quickstart: run one navigation mission with cloud offloading and
//! print the mission report.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use cloud_lgv::offload::deploy::Deployment;
use cloud_lgv::offload::mission::{self, MissionConfig};

fn main() {
    // The paper's lab navigation workload, offloaded to the edge
    // gateway with 8-thread parallelization (the best Fig. 13 case).
    let config = MissionConfig::navigation_lab(Deployment::edge_8t());
    println!("running navigation mission on deployment `{}` ...", config.deployment.label);

    let report = mission::run(config);

    println!();
    println!("completed : {} ({})", report.completed, report.reason);
    println!("distance  : {:.2} m", report.distance);
    println!(
        "time      : {:.1} s  (standby {:.1} s + moving {:.1} s)",
        report.time.total().as_secs_f64(),
        report.time.standby.as_secs_f64(),
        report.time.moving.as_secs_f64()
    );
    println!("avg VDP makespan: {}", report.avg_vdp_makespan);
    println!();
    println!("energy breakdown (Eq. 1a):");
    println!("{}", report.energy);
}
