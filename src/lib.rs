//! # cloud-lgv
//!
//! Facade crate for the reproduction of *Towards Practical Cloud
//! Offloading for Low-cost Ground Vehicle Workloads* (IPDPS 2021).
//! Re-exports the public API of every workspace crate; see the README
//! and `DESIGN.md` for the architecture.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use lgv_middleware as middleware;
pub use lgv_nav as nav;
pub use lgv_net as net;
pub use lgv_offload as offload;
pub use lgv_sim as sim;
pub use lgv_slam as slam;
pub use lgv_trace as trace;
pub use lgv_types as types;

pub use lgv_types::prelude;
